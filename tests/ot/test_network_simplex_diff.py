"""Differential tests: the sparse network simplex vs the scipy oracle.

An exact pivoting solver is exactly the kind of code that fails
*silently* — a missed candidate arc, a mishandled degenerate pivot or a
dropped tolerance produces a feasible-but-suboptimal plan that no
feasibility check catches.  This suite therefore generates randomized
balanced problems with hypothesis (varying shapes, support-mask
sparsity, degenerate/tied weights, denormal-scale costs) and checks
:func:`repro.ot.network_simplex_arcs` against the ``repro.ot.lp``-family
scipy oracle (:func:`repro.ot.solve._restricted_lp_entries`), asserting

* objective agreement to ``1e-9`` at unit cost scale,
* exact marginal feasibility of the returned flows, and
* termination with a bounded pivot count on every generated case.

Cost scales are compared at *unit scale*: the oracle is solved on the
unscaled costs and the engine's objective is divided by the scale,
because HiGHS's absolute dual tolerances make the oracle itself
suboptimal when all costs are ~1e-9 or denormal — the native engine
prices relative to the cost magnitude and stays exact there (a
regression below pins that).

The budget scales with the hypothesis profile: the default ``repro``
profile keeps tier-1 fast, the ``ci`` profile
(``--hypothesis-profile=ci``, the ``simplex-stress`` CI job) runs the
full stress budget of well over 200 generated cases across the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.exceptions import InfeasibleProblemError  # noqa: E402
from repro.ot import network_simplex_arcs  # noqa: E402
from repro.ot.onedim import north_west_corner_support  # noqa: E402
from repro.ot.solve import _restricted_lp_entries  # noqa: E402

#: Objective agreement with the oracle, at unit cost scale.
VALUE_TOL = 1e-9
#: Marginal feasibility of the returned flows.
FEAS_TOL = 1e-9


def _marginal_errors(flows, rows, cols, mu, nu):
    row_sums = np.bincount(rows, weights=flows, minlength=mu.size)
    col_sums = np.bincount(cols, weights=flows, minlength=nu.size)
    return (float(np.abs(row_sums - mu).max()),
            float(np.abs(col_sums - nu).max()))


@st.composite
def transport_problems(draw):
    """A random balanced arc-list problem plus its generation knobs.

    Returns ``(rows, cols, base_costs, mu, nu, scale)`` where the arcs
    always contain the NW staircase (so the problem is feasible), the
    weights may be smooth (dirichlet), tied (small integer ratios) or
    fully degenerate uniform, the costs may carry ties, and ``scale``
    stresses the pricing tolerances down to denormal range.
    """
    n = draw(st.integers(min_value=2, max_value=18))
    m = draw(st.integers(min_value=2, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    weight_kind = draw(st.sampled_from(["smooth", "tied", "uniform"]))
    mask_density = draw(st.sampled_from([None, 0.2, 0.5]))
    tied_costs = draw(st.booleans())
    scale = draw(st.sampled_from([1.0, 1e-9, 1e-300]))
    rng = np.random.default_rng(seed)

    if weight_kind == "smooth":
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
    elif weight_kind == "tied":
        # Small integer mass ratios: maximally many exact ties in the
        # staircase walk and in pivot ratio tests -> degenerate pivots.
        mu = rng.integers(1, 4, size=n).astype(float)
        nu = rng.integers(1, 4, size=m).astype(float)
        mu /= mu.sum()
        nu /= nu.sum()
    else:
        mu = np.full(n, 1.0 / n)
        nu = np.full(m, 1.0 / m)

    if mask_density is None:
        rows, cols = np.nonzero(np.ones((n, m), dtype=bool))
    else:
        mask = rng.random((n, m)) < mask_density
        nw_rows, nw_cols = north_west_corner_support(mu, nu)
        mask[nw_rows, nw_cols] = True
        rows, cols = np.nonzero(mask)

    if tied_costs:
        base_costs = rng.integers(0, 5, size=rows.size).astype(float)
    else:
        base_costs = rng.random(rows.size)
    return rows, cols, base_costs, mu, nu, scale


class TestDifferentialOracle:
    @given(problem=transport_problems())
    def test_objective_and_feasibility_match_oracle(self, problem):
        rows, cols, base_costs, mu, nu, scale = problem
        outcome = network_simplex_arcs(rows, cols, base_costs * scale,
                                       mu, nu)
        _, _, oracle_value = _restricted_lp_entries(
            base_costs, rows, cols, (mu.size, nu.size), mu, nu)
        assert outcome.value / scale == pytest.approx(oracle_value,
                                                      abs=VALUE_TOL)
        row_err, col_err = _marginal_errors(outcome.flows, rows, cols,
                                            mu, nu)
        assert row_err <= FEAS_TOL and col_err <= FEAS_TOL
        assert np.all(outcome.flows >= 0.0)

    @given(problem=transport_problems(),
           jitter_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_warm_start_reaches_cold_objective(self, problem, jitter_seed):
        """A basis from a perturbed problem must warm-start to the same
        optimum as a cold solve — never to a stale or infeasible one."""
        rows, cols, base_costs, mu, nu, scale = problem
        del scale  # the warm-start property is scale-free; test at 1.0
        rng = np.random.default_rng(jitter_seed)
        jitter = 1.0 + 0.2 * rng.random(mu.size + nu.size)
        mu_prev = mu * jitter[:mu.size]
        mu_prev /= mu_prev.sum()
        nu_prev = nu * jitter[mu.size:]
        nu_prev /= nu_prev.sum()
        # The mask was made feasible for (mu, nu); the perturbed
        # marginals may strand mass on it, so union *their* staircase
        # into the previous solve's arcs (exactly what the screened
        # solver's mask recipe does per stage).  The resulting state may
        # contain arcs outside the original list — the warm start must
        # drop them.
        prev_rows, prev_cols = north_west_corner_support(mu_prev, nu_prev)
        cost_of = {(r, c): v for r, c, v in zip(rows, cols, base_costs)}
        all_rows = np.concatenate([rows, prev_rows])
        all_cols = np.concatenate([cols, prev_cols])
        all_costs = np.array([cost_of.get((r, c), 1.0)
                              for r, c in zip(all_rows, all_cols)])
        previous = network_simplex_arcs(all_rows, all_cols, all_costs,
                                        mu_prev, nu_prev)
        cold = network_simplex_arcs(rows, cols, base_costs, mu, nu)
        warm = network_simplex_arcs(rows, cols, base_costs, mu, nu,
                                    init=previous.state)
        assert warm.warm_started
        assert warm.value == pytest.approx(cold.value, abs=1e-11)
        row_err, col_err = _marginal_errors(warm.flows, rows, cols,
                                            mu, nu)
        assert row_err <= FEAS_TOL and col_err <= FEAS_TOL


class TestTermination:
    @given(n=st.integers(min_value=2, max_value=30),
           cost_value=st.sampled_from([0.0, 1.0]))
    def test_fully_degenerate_uniform_terminates(self, n, cost_value):
        """The classic cycling trap: uniform marginals make *every*
        pivot degenerate (theta == 0 everywhere off the diagonal of
        ties); Bland's-rule fallback must still terminate, at the
        optimum."""
        rows, cols = np.nonzero(np.ones((n, n), dtype=bool))
        costs = np.full(rows.size, cost_value)
        mu = np.full(n, 1.0 / n)
        outcome = network_simplex_arcs(rows, cols, costs, mu, mu)
        assert outcome.value == pytest.approx(cost_value, abs=1e-12)
        row_err, col_err = _marginal_errors(outcome.flows, rows, cols,
                                            mu, mu)
        assert max(row_err, col_err) <= FEAS_TOL

    @settings(max_examples=20)
    @given(n=st.integers(min_value=3, max_value=12),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_tied_integer_costs_terminate_at_oracle_value(self, n, seed):
        """Integer costs on integer-ratio weights: ties in both the
        pricing and the ratio test, the degenerate-streak trigger's
        natural habitat."""
        rng = np.random.default_rng(seed)
        rows, cols = np.nonzero(np.ones((n, n), dtype=bool))
        costs = rng.integers(0, 3, size=rows.size).astype(float)
        mu = rng.integers(1, 3, size=n).astype(float)
        mu /= mu.sum()
        outcome = network_simplex_arcs(rows, cols, costs, mu, mu)
        _, _, oracle_value = _restricted_lp_entries(
            costs, rows, cols, (n, n), mu, mu)
        assert outcome.value == pytest.approx(oracle_value, abs=VALUE_TOL)


class TestRegressions:
    def test_denormal_costs_stay_exact(self):
        """Pricing must be scale-relative: with absolute tolerance
        floors, costs ~1e-300 vanish into the big-M root potentials and
        the solver declares instant bogus optimality (caught by this
        suite's first stress run)."""
        rng = np.random.default_rng(7)
        n = 20
        rows, cols = np.nonzero(np.ones((n, n), dtype=bool))
        base_costs = rng.random(rows.size)
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(n))
        tiny = network_simplex_arcs(rows, cols, base_costs * 1e-300,
                                    mu, nu)
        _, _, oracle_value = _restricted_lp_entries(
            base_costs, rows, cols, (n, n), mu, nu)
        assert tiny.value / 1e-300 == pytest.approx(oracle_value,
                                                    abs=VALUE_TOL)

    def test_infeasible_mask_raises(self):
        # Two sources, two targets, but only arcs into target 0: the
        # mass destined for target 1 is stranded.
        rows = np.array([0, 1])
        cols = np.array([0, 0])
        with pytest.raises(InfeasibleProblemError, match="stranded"):
            network_simplex_arcs(rows, cols, np.zeros(2),
                                 np.array([0.5, 0.5]),
                                 np.array([0.6, 0.4]))

    def test_warm_start_across_different_arc_lists(self):
        """The state stores tree arcs as node pairs, so it must survive
        a support change (the multiscale/epsilon-scaling use case):
        arcs missing from the new list are dropped, the basis is
        completed, and the solve still reaches the oracle optimum."""
        rng = np.random.default_rng(11)
        n = 25
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(n))
        cost = rng.random((n, n))
        wide = rng.random((n, n)) < 0.5
        narrow = rng.random((n, n)) < 0.3
        nw_rows, nw_cols = north_west_corner_support(mu, nu)
        for mask in (wide, narrow):
            mask[nw_rows, nw_cols] = True
        w_rows, w_cols = np.nonzero(wide)
        previous = network_simplex_arcs(w_rows, w_cols,
                                        cost[w_rows, w_cols], mu, nu)
        n_rows, n_cols = np.nonzero(narrow)
        warm = network_simplex_arcs(n_rows, n_cols,
                                    cost[n_rows, n_cols], mu, nu,
                                    init=previous.state)
        _, _, oracle_value = _restricted_lp_entries(
            cost[n_rows, n_cols], n_rows, n_cols, (n, n), mu, nu)
        assert warm.warm_started
        assert warm.value == pytest.approx(oracle_value, abs=VALUE_TOL)
