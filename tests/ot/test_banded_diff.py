"""Differential tests: the banded monotone kernel vs the exact engines.

``banded_monotone_transport`` skips *all* pricing — it asserts that the
staircase coupling is optimal and merely checks it fits the band.  That
argument is exactly the kind that fails silently if any ingredient is
off (a non-monotone band accepted, a tie split differently than the
oracle, a clamp hiding real infeasibility), so this suite generates
randomized banded problems with hypothesis (smooth/tied/uniform
marginals, staircase-hull and widened bands, degenerate width-1 bands,
denormal cost scales) and checks the kernel against both exact
restricted engines — :func:`repro.ot.network_simplex_arcs` and the
scipy-LP oracle — asserting

* objective agreement to ``1e-9`` at unit cost scale on the in-band
  metric cost,
* exact marginal feasibility of the returned masses, and
* every returned entry lies inside the requested band.

It also covers the certification helpers (``is_banded`` /
``band_bounds``) and the end-to-end pyramid property that
``levels=1`` reproduces the historical single-level multiscale solve.

The budget scales with the hypothesis profile: the default ``repro``
profile keeps tier-1 fast; the ``ci`` profile
(``--hypothesis-profile=ci``, the ``simplex-stress`` CI job) runs the
full stress budget.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.exceptions import (InfeasibleProblemError,  # noqa: E402
                              ValidationError)
from repro.ot import (band_bounds, banded_monotone_transport,  # noqa: E402
                      is_banded, network_simplex_arcs)
from repro.ot.solve import _restricted_lp_entries  # noqa: E402

#: Objective agreement with the exact engines, at unit cost scale.
VALUE_TOL = 1e-9
#: Marginal feasibility of the returned masses.
FEAS_TOL = 1e-9


def _marginal_errors(masses, rows, cols, mu, nu):
    row_sums = np.bincount(rows, weights=masses, minlength=mu.size)
    col_sums = np.bincount(cols, weights=masses, minlength=nu.size)
    return (float(np.abs(row_sums - mu).max()),
            float(np.abs(col_sums - nu).max()))


def _band_arcs(lower, upper):
    """All in-band arcs as lex-sorted ``(rows, cols)`` index arrays."""
    widths = upper - lower + 1
    rows = np.repeat(np.arange(lower.size), widths)
    cols = np.concatenate([np.arange(lo, hi + 1)
                           for lo, hi in zip(lower, upper)])
    return rows, cols


@st.composite
def banded_problems(draw):
    """A random monotone-banded problem plus its generation knobs.

    Returns ``(mu, nu, lower, upper, xs, ys, scale)``.  The band is the
    NW-staircase hull optionally widened by a random slack (so it is
    always feasible and always monotone); supports are sorted, making
    the squared-distance cost a certified-monotone metric cost on which
    the staircase is the true restricted optimum.  ``slack=0`` yields
    the tightest band — including fully degenerate width-1 bands when
    the staircase is a bijection.
    """
    n = draw(st.integers(min_value=2, max_value=18))
    m = draw(st.integers(min_value=2, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    weight_kind = draw(st.sampled_from(["smooth", "tied", "uniform"]))
    slack = draw(st.sampled_from([0, 1, 3]))
    scale = draw(st.sampled_from([1.0, 1e-9, 1e-300]))
    rng = np.random.default_rng(seed)

    if weight_kind == "smooth":
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
    elif weight_kind == "tied":
        # Small integer ratios: maximal staircase ties, so the walk
        # closes row and column simultaneously (degenerate steps).
        mu = rng.integers(1, 4, size=n).astype(float)
        nu = rng.integers(1, 4, size=m).astype(float)
        mu /= mu.sum()
        nu /= nu.sum()
    else:
        mu = np.full(n, 1.0 / n)
        nu = np.full(m, 1.0 / m)

    from repro.ot import north_west_corner_support
    nw_rows, nw_cols = north_west_corner_support(mu, nu)
    lower, upper = band_bounds(nw_rows, nw_cols, (n, m))
    if slack:
        # Widening the hull keeps both endpoint sequences monotone.
        lower = np.maximum(lower - slack, 0)
        upper = np.minimum(upper + slack, m - 1)

    xs = np.sort(rng.normal(size=n))
    ys = np.sort(rng.normal(size=m))
    return mu, nu, lower, upper, xs, ys, scale


class TestDifferentialOracle:
    @given(problem=banded_problems())
    def test_matches_both_exact_engines(self, problem):
        mu, nu, lower, upper, xs, ys, scale = problem
        rows, cols, masses = banded_monotone_transport(mu, nu, lower,
                                                       upper)
        assert np.all(cols >= lower[rows]) and np.all(cols <= upper[rows])
        row_err, col_err = _marginal_errors(masses, rows, cols, mu, nu)
        assert row_err <= FEAS_TOL and col_err <= FEAS_TOL
        assert np.all(masses > 0.0)

        arc_rows, arc_cols = _band_arcs(lower, upper)
        base_costs = np.square(xs[arc_rows] - ys[arc_cols])
        cost_of = {}
        for r, c, v in zip(arc_rows, arc_cols, base_costs):
            cost_of[(r, c)] = v
        value = sum(w * cost_of[(r, c)]
                    for r, c, w in zip(rows, cols, masses))

        simplex = network_simplex_arcs(arc_rows, arc_cols,
                                       base_costs * scale, mu, nu)
        _, _, lp_value = _restricted_lp_entries(
            base_costs, arc_rows, arc_cols, (mu.size, nu.size), mu, nu)
        assert value == pytest.approx(simplex.value / scale, abs=VALUE_TOL)
        assert value == pytest.approx(lp_value, abs=VALUE_TOL)

    @given(problem=banded_problems())
    def test_band_certifiers_accept_generated_bands(self, problem):
        mu, nu, lower, upper, _, _, _ = problem
        rows, cols = _band_arcs(lower, upper)
        shape = (mu.size, nu.size)
        assert is_banded(rows, cols, shape)
        re_lower, re_upper = band_bounds(rows, cols, shape)
        assert np.array_equal(re_lower, lower)
        assert np.array_equal(re_upper, upper)


class TestBandCertification:
    def test_band_bounds_hull(self):
        rows = np.array([0, 0, 1, 1, 2])
        cols = np.array([0, 2, 1, 3, 3])
        lower, upper = band_bounds(rows, cols, (3, 4))
        assert lower.tolist() == [0, 1, 3]
        assert upper.tolist() == [2, 3, 3]

    def test_band_bounds_requires_covered_rows(self):
        with pytest.raises(ValidationError, match="every row"):
            band_bounds(np.array([0, 2]), np.array([0, 1]), (3, 2))

    def test_is_banded_rejects_holes(self):
        # Row 0 covers {0, 2} but not 1: an interval hull lies.
        rows = np.array([0, 0, 1])
        cols = np.array([0, 2, 2])
        assert not is_banded(rows, cols, (2, 3))

    def test_is_banded_rejects_non_monotone_bands(self):
        # Contiguous rows, but the lower edge goes back up-left.
        rows = np.array([0, 1])
        cols = np.array([1, 0])
        assert not is_banded(rows, cols, (2, 2))

    def test_is_banded_tolerates_duplicate_arcs(self):
        rows = np.array([0, 0, 0, 1])
        cols = np.array([0, 0, 1, 1])
        assert is_banded(rows, cols, (2, 2))


class TestDegenerateBands:
    def test_width_one_identity_band(self):
        # lo == hi everywhere: the only feasible plan is the diagonal,
        # which is also what the staircase produces when mu == nu.
        mu = np.array([0.2, 0.3, 0.5])
        idx = np.arange(3)
        rows, cols, masses = banded_monotone_transport(mu, mu, idx, idx)
        assert rows.tolist() == cols.tolist() == idx.tolist()
        assert np.allclose(masses, mu)

    def test_width_one_infeasible_band_raises(self):
        # The staircase must spill mass outside a diagonal band when
        # the marginals differ by more than the repair tolerance.
        mu = np.array([0.5, 0.5])
        nu = np.array([0.25, 0.75])
        with pytest.raises(InfeasibleProblemError, match="band"):
            banded_monotone_transport(mu, nu, np.array([0, 1]),
                                      np.array([0, 1]))

    def test_roundoff_stray_mass_is_clamped(self):
        # Stray mass at the repair tolerance is snapped to the band
        # edge instead of failing the whole restricted solve.
        eps = 1e-14
        mu = np.array([0.5, 0.5])
        nu = np.array([0.5 - eps, 0.5 + eps])
        rows, cols, masses = banded_monotone_transport(
            mu, nu, np.array([0, 1]), np.array([0, 1]))
        assert np.all(cols >= np.array([0, 1])[rows])
        assert float(masses.sum()) == pytest.approx(1.0, abs=1e-12)

    def test_band_validation(self):
        mu = np.array([0.5, 0.5])
        with pytest.raises(ValidationError, match="monotone"):
            banded_monotone_transport(mu, mu, np.array([1, 0]),
                                      np.array([1, 1]))
        with pytest.raises(ValidationError, match="lower"):
            banded_monotone_transport(mu, mu, np.array([1, 1]),
                                      np.array([0, 1]))
        with pytest.raises(ValidationError, match="band bounds"):
            banded_monotone_transport(mu, mu, np.array([0, 1]),
                                      np.array([1, 2]))


class TestPyramidProperties:
    """End-to-end hypothesis properties of the v2 multiscale pyramid."""

    @staticmethod
    def _mixture_problem(n, seed):
        from repro.ot import OTProblem
        rng = np.random.default_rng(seed)
        nodes = np.linspace(-3.0, 3.0, n)
        mu = (np.exp(-0.5 * (nodes - rng.uniform(-1, 1)) ** 2)
              + rng.uniform(0.1, 0.5)
              * np.exp(-2.0 * (nodes - rng.uniform(-1, 1)) ** 2))
        nu = np.exp(-0.5 * (nodes - rng.uniform(-1, 1)) ** 2 /
                    rng.uniform(0.5, 1.5) ** 2)
        return OTProblem(source_weights=mu / mu.sum(),
                         target_weights=nu / nu.sum(),
                         source_support=nodes, target_support=nodes)

    @given(n=st.integers(min_value=40, max_value=200),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           coarsen=st.sampled_from([3, 4, 6]))
    def test_banded_pyramid_matches_simplex_pyramid(self, n, seed,
                                                    coarsen):
        from repro.ot import solve
        problem = self._mixture_problem(n, seed)
        banded = solve(problem, method="multiscale", coarsen=coarsen,
                       restricted_engine="banded")
        simplex = solve(problem, method="multiscale", coarsen=coarsen,
                        restricted_engine="network_simplex")
        assert banded.extras["restricted_engine"] == "banded"
        assert banded.value == pytest.approx(simplex.value, abs=VALUE_TOL)
        assert np.allclose(banded.plan.toarray(), simplex.plan.toarray(),
                           atol=1e-9)

    @given(n=st.integers(min_value=40, max_value=160),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_single_level_pin_and_deeper_levels_agree(self, n, seed):
        """``levels=1`` is the historical single-level solver; deeper
        pyramids must reach the same (exact-oracle) optimum."""
        from repro.ot import solve
        problem = self._mixture_problem(n, seed)
        oracle = solve(problem, method="exact")
        single = solve(problem, method="multiscale", coarsen=4, levels=1)
        deep = solve(problem, method="multiscale", coarsen=4, levels=2)
        assert single.extras["levels"] == 1
        assert deep.extras["levels"] == 2
        assert single.value == pytest.approx(oracle.value, rel=1e-9)
        assert deep.value == pytest.approx(oracle.value, rel=1e-9)
