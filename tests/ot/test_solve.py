"""Tests for the unified ``repro.ot.solve`` API.

Covers the four contract areas of the redesign: the solver registry
round-trip, cross-solver agreement against the LP oracle, the
``OTResult`` invariants, and the legacy entry points' shim equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot import (OTProblem, OTResult, Solver, TransportPlan,
                      auto_method, available_solvers, register_solver,
                      resolve_solver, sinkhorn, solve, solve_1d,
                      solve_sinkhorn, solve_transport, solve_transport_lp,
                      solver_descriptions, squared_euclidean_cost,
                      transport_lp, transport_simplex, unregister_solver)

#: Cost-value agreement tolerance against the LP oracle, per solver.
#: Exact methods must match tightly; entropic methods are biased by
#: design (regularisation blurs the plan) so only closeness is required.
VALUE_RTOL = {
    "exact": 1e-9,
    "simplex": 1e-9,
    "lp": 1e-9,
    "screened": 1e-9,
    "multiscale": 1e-9,
    "auto": 1e-9,
    "sinkhorn": 0.5,
    "sinkhorn_log": 0.5,
}

#: Marginal-residual ceiling per solver: exact plans must satisfy the
#: coupling constraints to solver precision; entropic plans to their
#: reported tolerance.
RESIDUAL_ATOL = {
    "exact": 1e-8,
    "simplex": 1e-8,
    "lp": 1e-8,
    "screened": 1e-8,
    "multiscale": 1e-8,
    "auto": 1e-8,
    "sinkhorn": 1e-6,
    "sinkhorn_log": 1e-6,
}


@pytest.fixture
def shared_problem(rng):
    """A small dense 1-D problem every registered solver can handle."""
    n, m = 14, 11
    xs = np.sort(rng.normal(size=n))
    ys = np.sort(rng.normal(size=m))
    mu = rng.dirichlet(np.ones(n))
    nu = rng.dirichlet(np.ones(m))
    return OTProblem(source_weights=mu, target_weights=nu,
                     source_support=xs, target_support=ys)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_solvers()
        for expected in ("exact", "simplex", "lp", "sinkhorn",
                         "sinkhorn_log", "screened", "multiscale", "auto"):
            assert expected in names

    def test_every_solver_has_a_description(self):
        for name, description in solver_descriptions().items():
            assert description, f"solver {name} lacks a description"

    def test_register_resolve_solve_round_trip(self, shared_problem):
        @register_solver("test-uniform", description="independent coupling")
        def uniform_solver(problem):
            mu, nu = problem.source_weights, problem.target_weights
            return np.outer(mu, nu)

        try:
            assert "test-uniform" in available_solvers()
            solver = resolve_solver("test-uniform")
            assert solver.name == "test-uniform"
            result = solve(shared_problem, method="test-uniform")
            assert isinstance(result, OTResult)
            assert result.solver == "test-uniform"
            # The independent coupling is feasible, hence tiny residuals.
            assert result.marginal_residual <= 1e-12
        finally:
            unregister_solver("test-uniform")
        assert "test-uniform" not in available_solvers()
        with pytest.raises(ValidationError, match="unknown solver"):
            resolve_solver("test-uniform")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_solver("exact")(lambda problem: None)

    def test_overwrite_evicts_stale_aliases(self, shared_problem):
        register_solver("test-shadowed", aliases=("test-alias",),
                        description="first")(
            lambda problem: np.outer(problem.source_weights,
                                     problem.target_weights))
        try:
            register_solver("test-shadowed", overwrite=True,
                            description="second")(
                lambda problem: np.outer(problem.source_weights,
                                         problem.target_weights))
            # The old alias must not keep resolving to the shadowed entry.
            with pytest.raises(ValidationError, match="unknown solver"):
                resolve_solver("test-alias")
            assert resolve_solver("test-shadowed").description == "second"
        finally:
            unregister_solver("test-shadowed")

    def test_resolution_accepts_callable(self, shared_problem):
        def my_solver(problem):
            return np.outer(problem.source_weights, problem.target_weights)

        result = solve(shared_problem, method=my_solver)
        assert result.solver == "my_solver"
        assert result.marginal_residual <= 1e-12

    def test_resolution_accepts_solver_instance(self, shared_problem):
        solver = Solver(
            name="inline",
            fn=lambda problem: np.outer(problem.source_weights,
                                        problem.target_weights),
            description="inline test solver")
        result = solve(shared_problem, method=solver)
        assert result.solver == "inline"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValidationError, match="expected one of"):
            resolve_solver("quantum")

    def test_unresolvable_spec_rejected(self):
        with pytest.raises(ValidationError, match="cannot resolve"):
            resolve_solver(42)

    def test_aliases_resolve_to_primary(self):
        assert resolve_solver("monotone").name == "exact"
        assert resolve_solver("highs").name == "lp"


class TestCrossSolverAgreement:
    def test_all_registered_solvers_near_lp_oracle(self, shared_problem):
        cost = squared_euclidean_cost(shared_problem.source_support,
                                      shared_problem.target_support)
        oracle = float(np.sum(cost * transport_lp(
            cost, shared_problem.source_weights,
            shared_problem.target_weights)))
        for name in available_solvers():
            if name not in VALUE_RTOL:  # solver registered by other tests
                continue
            result = solve(shared_problem, method=name)
            assert result.value == pytest.approx(
                oracle, rel=VALUE_RTOL[name], abs=1e-9), name
            assert result.marginal_residual <= RESIDUAL_ATOL[name], name

    def test_screened_matches_oracle_on_larger_problem(self, rng):
        n = 120
        nodes = np.linspace(-3.0, 3.0, n)
        mu = np.exp(-0.5 * (nodes + 1.0) ** 2)
        nu = np.exp(-0.5 * (nodes - 1.0) ** 2)
        mu /= mu.sum()
        nu /= nu.sum()
        cost = squared_euclidean_cost(nodes.reshape(-1, 1),
                                      nodes.reshape(-1, 1))
        oracle = float(np.sum(cost * transport_lp(cost, mu, nu)))
        result = solve(cost, mu, nu, method="screened")
        assert result.value == pytest.approx(oracle, rel=1e-6)
        assert result.marginal_residual <= 1e-8
        assert result.extras["support_density"] < 0.5

    def test_lp_mask_is_hard_restriction_when_feasible(self,
                                                       shared_problem):
        # A feasible mask (monotone support + a band) must confine the
        # plan: no mass outside it, and no silent widening.
        n, m = shared_problem.shape
        mask = np.zeros((n, m), dtype=bool)
        from repro.ot import north_west_corner
        mask |= north_west_corner(shared_problem.source_weights,
                                  shared_problem.target_weights) > 0.0
        problem = OTProblem(
            source_weights=shared_problem.source_weights,
            target_weights=shared_problem.target_weights,
            source_support=shared_problem.source_support,
            target_support=shared_problem.target_support,
            support_mask=mask)
        result = solve(problem, method="lp")
        assert result.extras["mask_widened"] is False
        assert np.all(result.matrix[~mask] == 0.0)
        assert result.marginal_residual <= 1e-8

    def test_lp_infeasible_mask_widened_and_reported(self,
                                                     shared_problem):
        mask = np.zeros(shared_problem.shape, dtype=bool)
        mask[0, 0] = True  # cannot couple the full marginals
        problem = OTProblem(
            source_weights=shared_problem.source_weights,
            target_weights=shared_problem.target_weights,
            source_support=shared_problem.source_support,
            target_support=shared_problem.target_support,
            support_mask=mask)
        result = solve(problem, method="lp")
        assert result.extras["mask_widened"] is True
        assert result.marginal_residual <= 1e-8

    def test_screened_honours_support_mask_union(self, shared_problem):
        mask = np.zeros(shared_problem.shape, dtype=bool)
        mask[0, :] = True
        problem = OTProblem(
            source_weights=shared_problem.source_weights,
            target_weights=shared_problem.target_weights,
            source_support=shared_problem.source_support,
            target_support=shared_problem.target_support,
            support_mask=mask)
        result = solve(problem, method="screened")
        assert result.converged
        assert result.marginal_residual <= 1e-8


class TestOTResultInvariants:
    @pytest.mark.parametrize("method", ["exact", "simplex", "lp",
                                        "sinkhorn", "screened"])
    def test_residuals_match_recomputation(self, shared_problem, method):
        result = solve(shared_problem, method=method)
        matrix = result.matrix
        row = float(np.abs(matrix.sum(axis=1)
                           - shared_problem.source_weights).max())
        col = float(np.abs(matrix.sum(axis=0)
                           - shared_problem.target_weights).max())
        assert result.residual_source == pytest.approx(row, abs=1e-15)
        assert result.residual_target == pytest.approx(col, abs=1e-15)
        assert result.marginal_residual == max(result.residual_source,
                                               result.residual_target)

    @pytest.mark.parametrize("method", ["exact", "simplex", "lp",
                                        "sinkhorn", "screened"])
    def test_diagnostics_populated(self, shared_problem, method):
        result = solve(shared_problem, method=method)
        assert result.solver == method
        assert result.converged
        assert result.n_iter >= 0
        assert result.wall_time >= 0.0
        assert np.isfinite(result.value)
        assert isinstance(result.plan, TransportPlan)
        summary = result.summary()
        assert summary["solver"] == method
        assert summary["converged"] is True

    def test_unconverged_sinkhorn_reports_honestly(self, shared_problem):
        result = solve(shared_problem, method="sinkhorn", epsilon=1e-4,
                       max_iter=3, tol=1e-14)
        assert not result.converged
        assert result.n_iter == 3
        assert result.marginal_residual > 1e-14

    def test_auto_dispatch_records_target(self, shared_problem):
        result = solve(shared_problem, method=resolve_solver("auto"))
        assert result.solver == "auto"
        assert result.extras["dispatched_to"] == "exact"


class TestAutoDispatch:
    def test_one_dimensional_goes_monotone(self, shared_problem):
        assert auto_method(shared_problem) == "exact"
        assert solve(shared_problem).solver == "exact"

    def test_explicit_cost_disables_monotone(self, shared_problem, rng):
        problem = OTProblem(
            source_weights=shared_problem.source_weights,
            target_weights=shared_problem.target_weights,
            cost=rng.random(shared_problem.shape))
        assert auto_method(problem) == "simplex"

    def test_medium_problems_go_lp(self, rng):
        n = 128
        problem = OTProblem(source_weights=np.full(n, 1.0 / n),
                            target_weights=np.full(n, 1.0 / n),
                            cost=rng.random((n, n)))
        assert auto_method(problem) == "lp"

    def test_large_problems_go_screened(self):
        n = 512
        problem = OTProblem(source_weights=np.full(n, 1.0 / n),
                            target_weights=np.full(n, 1.0 / n),
                            cost=np.zeros((n, n)))
        assert auto_method(problem) == "screened"

    def test_masked_problems_avoid_mask_blind_solvers(self, rng):
        # Small + masked must not dispatch to the simplex (which rejects
        # masks); it must route to a mask-honouring solver and solve.
        n = 6
        problem = OTProblem(source_weights=np.full(n, 1.0 / n),
                            target_weights=np.full(n, 1.0 / n),
                            cost=rng.random((n, n)),
                            support_mask=np.eye(n, dtype=bool))
        assert auto_method(problem) == "lp"
        result = solve(problem)
        assert result.solver == "lp"
        assert result.marginal_residual <= 1e-8

    def test_auto_string_filters_opts_like_registered_auto(
            self, shared_problem):
        # epsilon alongside the default method="auto" must be dropped
        # when dispatch lands on the exact solver, not crash.
        result = solve(shared_problem, epsilon=1e-3)
        assert result.solver == "exact"


class TestProblemValidation:
    def test_needs_cost_or_supports(self):
        with pytest.raises(ValidationError, match="cost matrix or both"):
            OTProblem(source_weights=[0.5, 0.5], target_weights=[1.0])

    def test_marginals_not_repeated_alongside_problem(self, shared_problem):
        with pytest.raises(ValidationError, match="do not pass them"):
            solve(shared_problem, shared_problem.source_weights,
                  shared_problem.target_weights)

    def test_cost_shape_checked(self):
        with pytest.raises(ValidationError, match="incompatible"):
            OTProblem(source_weights=[0.5, 0.5],
                      target_weights=[0.5, 0.5], cost=np.zeros((3, 2)))

    def test_mask_shape_checked(self):
        with pytest.raises(ValidationError, match="support_mask"):
            OTProblem(source_weights=[0.5, 0.5],
                      target_weights=[0.5, 0.5], cost=np.zeros((2, 2)),
                      support_mask=np.ones((3, 3), dtype=bool))

    def test_exact_rejects_non_1d(self, rng):
        problem = OTProblem(source_weights=[0.5, 0.5],
                            target_weights=[0.5, 0.5],
                            cost=rng.random((2, 2)))
        with pytest.raises(ValidationError, match="1-D"):
            solve(problem, method="exact")

    def test_lazy_cost_caches(self, shared_problem):
        first = shared_problem.cost_matrix()
        assert shared_problem.cost_matrix() is first
        expected = squared_euclidean_cost(shared_problem.source_support,
                                          shared_problem.target_support)
        np.testing.assert_allclose(first, expected)


class TestLegacyShimEquivalence:
    """The five historical entry points must agree with solve()."""

    @pytest.fixture
    def dense_problem(self, rng):
        n, m = 9, 12
        cost = rng.random((n, m))
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
        return cost, mu, nu

    def test_solve_1d(self, rng):
        xs = rng.normal(size=10)
        ys = rng.normal(size=13)
        mu = rng.dirichlet(np.ones(10))
        nu = rng.dirichlet(np.ones(13))
        legacy = solve_1d(xs, mu, ys, nu, p=2)
        unified = solve(OTProblem(source_weights=mu, target_weights=nu,
                                  source_support=xs, target_support=ys),
                        method="exact")
        np.testing.assert_allclose(legacy.matrix, unified.matrix)
        assert legacy.cost == pytest.approx(unified.value)

    def test_transport_simplex(self, dense_problem):
        cost, mu, nu = dense_problem
        legacy = transport_simplex(cost, mu, nu)
        unified = solve(cost, mu, nu, method="simplex")
        np.testing.assert_allclose(legacy, unified.matrix)

    def test_solve_transport(self, dense_problem):
        cost, mu, nu = dense_problem
        legacy = solve_transport(cost, mu, nu)
        unified = solve(cost, mu, nu, method="simplex")
        np.testing.assert_allclose(legacy.matrix, unified.matrix)
        assert legacy.cost == pytest.approx(unified.value)

    def test_solve_transport_lp(self, dense_problem):
        cost, mu, nu = dense_problem
        legacy = solve_transport_lp(cost, mu, nu)
        unified = solve(cost, mu, nu, method="lp")
        np.testing.assert_allclose(legacy.matrix, unified.matrix)
        assert legacy.cost == pytest.approx(unified.value)

    def test_solve_sinkhorn(self, dense_problem):
        cost, mu, nu = dense_problem
        legacy = solve_sinkhorn(cost, mu, nu, epsilon=0.1)
        unified = solve(cost, mu, nu, method="sinkhorn", epsilon=0.1)
        np.testing.assert_allclose(legacy.matrix, unified.matrix,
                                   atol=1e-12)
        assert legacy.cost == pytest.approx(unified.value)

    def test_sinkhorn_impl_matches_facade(self, dense_problem):
        cost, mu, nu = dense_problem
        impl = sinkhorn(cost, mu, nu, epsilon=0.1)
        facade = solve(cost, mu, nu, method="sinkhorn", epsilon=0.1)
        np.testing.assert_allclose(impl.plan, facade.matrix, atol=1e-12)
        assert facade.n_iter == impl.iterations


class TestScreenedEpsilonScaling:
    """The annealed Sinkhorn screen: epsilon_scaling=True runs a
    geometric epsilon schedule with warm-started scales."""

    @pytest.fixture
    def hard_problem(self, rng):
        n = 120
        xs = np.sort(rng.normal(size=n))
        ys = np.sort(rng.normal(size=n)) + 0.5
        return OTProblem(source_weights=rng.dirichlet(np.ones(n) * 2.0),
                         target_weights=rng.dirichlet(np.ones(n) * 2.0),
                         source_support=xs, target_support=ys)

    def test_matches_dense_lp_value(self, hard_problem):
        reference = solve(hard_problem, method="lp")
        scaled = solve(hard_problem, method="screened", epsilon=1e-3,
                       screen_tol=1e-7, epsilon_scaling=True, n_scales=4)
        assert scaled.value == pytest.approx(reference.value, abs=1e-8)
        assert scaled.extras["epsilon_scaling"] is True
        assert scaled.extras["n_scales"] == 4
        assert scaled.extras["screen_iterations"] > 0

    def test_converges_where_cold_start_stalls(self, hard_problem):
        """The scaling loop's reason to exist: at small epsilon the cold
        screen burns its whole budget, the annealed one converges."""
        budget = 800
        cold = solve(hard_problem, method="screened", epsilon=1e-3,
                     screen_max_iter=budget, screen_tol=1e-7)
        scaled = solve(hard_problem, method="screened", epsilon=1e-3,
                       screen_max_iter=budget, screen_tol=1e-7,
                       epsilon_scaling=True, n_scales=4)
        assert scaled.extras["screen_converged"]
        assert not cold.extras["screen_converged"]

    def test_single_scale_equals_direct_screen(self, hard_problem):
        direct = solve(hard_problem, method="screened", epsilon=1e-2,
                       screen_tol=1e-7)
        single = solve(hard_problem, method="screened", epsilon=1e-2,
                       screen_tol=1e-7, epsilon_scaling=True, n_scales=1)
        assert single.value == pytest.approx(direct.value, abs=1e-10)
        assert single.extras["screen_iterations"] == \
            direct.extras["screen_iterations"]

    def test_invalid_n_scales_rejected(self, hard_problem):
        with pytest.raises(ValidationError, match="n_scales"):
            solve(hard_problem, method="screened", epsilon_scaling=True,
                  n_scales=0)

    def test_reachable_through_solver_opts(self, rng):
        """The design layer's solver_opts path (and hence the CLI's
        --solver-opt epsilon_scaling=true) reaches the knob."""
        from repro.ot.registry import filter_opts, resolve_solver

        opts = filter_opts(resolve_solver("screened"),
                           {"epsilon_scaling": True, "n_scales": 3,
                            "coarsen": 4})
        assert opts == {"epsilon_scaling": True, "n_scales": 3}

    @staticmethod
    def _tall_problem(rng, n, m=8):
        xs = np.sort(rng.normal(size=n))
        ys = np.sort(rng.normal(size=m))
        return OTProblem(source_weights=rng.dirichlet(np.ones(n)),
                         target_weights=rng.dirichlet(np.ones(m)),
                         source_support=xs, target_support=ys)

    def test_auto_switches_on_exactly_at_the_limit(self, rng):
        """epsilon_scaling="auto" keys on max(n, m) crossing
        EPSILON_SCALING_AUTO_LIMIT — inclusive at the limit, off one
        state below it."""
        from repro.ot.solve import EPSILON_SCALING_AUTO_LIMIT

        at_limit = solve(self._tall_problem(rng, EPSILON_SCALING_AUTO_LIMIT),
                         method="screened", epsilon=1e-1,
                         screen_max_iter=200)
        assert at_limit.extras["epsilon_scaling"] is True
        assert at_limit.extras["n_scales"] >= 1
        below = solve(self._tall_problem(rng, EPSILON_SCALING_AUTO_LIMIT - 1),
                      method="screened", epsilon=1e-1,
                      screen_max_iter=200)
        assert "epsilon_scaling" not in below.extras

    def test_auto_rejects_other_strings(self, rng):
        with pytest.raises(ValidationError, match="epsilon_scaling"):
            solve(self._tall_problem(rng, 64), method="screened",
                  epsilon_scaling="always")


class TestDefaultScreenK:
    """``default_screen_k`` must sit at the elbow of the accuracy-vs-k
    curve measured by ``benchmarks/test_screened_k_sweep.py`` (committed
    table in ``benchmarks/results/screened_k_sweep.txt``): on metric
    design cells every k is staircase-certified exact, and on the
    adversarial scrambled-grid regime the default clears the steep
    region (sub-0.1% error) where tiny k is off a cliff.  This pins
    both at one small size so a formula regression cannot land
    silently."""

    N = 300

    def _scrambled_problem(self, rng):
        n = self.N
        xs = np.sort(rng.normal(size=n))
        ys = rng.permutation(np.sort(rng.normal(size=n)) + 0.4)
        return OTProblem(source_weights=rng.dirichlet(np.ones(n) * 2.0),
                         target_weights=rng.dirichlet(np.ones(n) * 2.0),
                         source_support=xs, target_support=ys)

    def test_workload_regime_exact_at_the_default(self, rng):
        from repro.ot import default_screen_k

        n = self.N
        xs = np.sort(rng.normal(size=n))
        ys = np.sort(rng.normal(size=n)) + 0.4
        problem = OTProblem(source_weights=rng.dirichlet(np.ones(n) * 2.0),
                            target_weights=rng.dirichlet(np.ones(n) * 2.0),
                            source_support=xs, target_support=ys)
        oracle = solve(problem, method="lp")
        at_default = solve(problem, method="screened",
                           k=default_screen_k(n, n))
        assert at_default.value == pytest.approx(oracle.value, rel=1e-9)
        assert at_default.extras["support_density"] < 0.12

    def test_adversarial_regime_default_clears_the_elbow(self, rng):
        from repro.ot import default_screen_k

        problem = self._scrambled_problem(rng)
        oracle = solve(problem, method="lp")
        screen_opts = dict(epsilon=1e-3, epsilon_scaling=True)
        tiny = solve(problem, method="screened", k=3, **screen_opts)
        at_default = solve(problem, method="screened",
                           k=default_screen_k(self.N, self.N),
                           **screen_opts)
        tiny_err = (tiny.value - oracle.value) / oracle.value
        default_err = (at_default.value - oracle.value) / oracle.value
        assert tiny_err > 1e-1, "k=3 should be far off the optimum"
        assert -5e-8 <= default_err < 1e-3, (
            f"default k off the elbow ({default_err:.3e})")

    def test_formula_floor_and_growth(self):
        from repro.ot import default_screen_k

        assert default_screen_k(2, 2) == 9
        assert default_screen_k(300, 300) == 17
        assert default_screen_k(300, 4) == 17  # keyed on the max side
        assert default_screen_k(100_000, 100_000) == 25


class TestReviewRegressions:
    def test_overwriting_an_alias_keeps_the_shadowed_builtin(self):
        register_solver("test-mymono", aliases=("monotone",),
                        overwrite=True, description="alias thief")(
            lambda problem: np.outer(problem.source_weights,
                                     problem.target_weights))
        try:
            # The builtin must survive under its primary name...
            assert resolve_solver("exact").name == "exact"
            # ...and default 1-D solves must still work process-wide.
            xs = np.array([0.0, 1.0])
            result = solve(OTProblem(source_weights=[0.5, 0.5],
                                     target_weights=[0.5, 0.5],
                                     source_support=xs, target_support=xs))
            assert result.solver == "exact"
            assert resolve_solver("monotone").name == "test-mymono"
        finally:
            unregister_solver("test-mymono")
            # Restore the builtin's alias for later tests.
            _exact = resolve_solver("exact")
            from repro.ot.registry import _REGISTRY
            _REGISTRY["monotone"] = _exact

    def test_screened_full_support_is_converged(self):
        # k >= n makes the mask all-True: the restricted LP is the dense
        # LP, so the result is provably optimal even if the tiny screen
        # budget ran out.
        result = solve(OTProblem(source_weights=[0.5, 0.5],
                                 target_weights=[0.5, 0.5],
                                 source_support=[0.0, 1.0],
                                 target_support=[0.0, 2.0]),
                       method="screened", screen_max_iter=1,
                       screen_tol=1e-300)
        assert result.extras["support_density"] == 1.0
        assert result.converged
