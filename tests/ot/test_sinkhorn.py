"""Tests for entropic OT (Sinkhorn-Knopp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.ot.cost import squared_euclidean_cost
from repro.ot.network_simplex import transport_simplex
from repro.ot.sinkhorn import sinkhorn, sinkhorn_log, solve_sinkhorn


@pytest.fixture
def random_problem(rng):
    n, m = 8, 10
    xs = rng.normal(size=(n, 1))
    ys = rng.normal(size=(m, 1))
    cost = squared_euclidean_cost(xs, ys)
    mu = rng.dirichlet(np.ones(n))
    nu = rng.dirichlet(np.ones(m))
    return cost, mu, nu


class TestSinkhorn:
    def test_marginals_satisfied(self, random_problem):
        cost, mu, nu = random_problem
        result = sinkhorn(cost, mu, nu, epsilon=0.05, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-8)
        np.testing.assert_allclose(result.plan.sum(axis=0), nu, atol=1e-8)

    def test_cost_approaches_exact_as_epsilon_shrinks(self, random_problem):
        cost, mu, nu = random_problem
        exact = float(np.sum(cost * transport_simplex(cost, mu, nu)))
        gaps = []
        for epsilon in (0.5, 0.05, 0.005):
            result = sinkhorn(cost, mu, nu, epsilon=epsilon, tol=1e-11,
                              max_iter=50_000)
            entropic = float(np.sum(cost * result.plan))
            gaps.append(abs(entropic - exact))
        assert gaps[0] >= gaps[1] >= gaps[2] - 1e-12
        assert gaps[2] < 0.05 * max(exact, 1e-12) + 1e-6

    def test_plan_strictly_positive(self, random_problem):
        cost, mu, nu = random_problem
        result = sinkhorn(cost, mu, nu, epsilon=0.1)
        assert np.all(result.plan > 0.0)  # entropic plans are dense

    def test_invalid_epsilon_rejected(self, random_problem):
        cost, mu, nu = random_problem
        with pytest.raises(ValidationError, match="epsilon"):
            sinkhorn(cost, mu, nu, epsilon=0.0)

    def test_failure_raises_by_default(self, random_problem):
        cost, mu, nu = random_problem
        with pytest.raises(ConvergenceError):
            sinkhorn(cost, mu, nu, epsilon=1e-4, max_iter=3, tol=1e-14)

    def test_failure_returns_best_when_asked(self, random_problem):
        cost, mu, nu = random_problem
        result = sinkhorn(cost, mu, nu, epsilon=1e-4, max_iter=3,
                          tol=1e-14, raise_on_failure=False)
        assert not result.converged
        assert result.iterations == 3
        assert np.isfinite(result.residual)


class TestSinkhornLog:
    def test_matches_probability_domain(self, random_problem):
        cost, mu, nu = random_problem
        scale = float(np.max(cost))
        plain = sinkhorn(cost, mu, nu, epsilon=0.1, tol=1e-11,
                         max_iter=50_000)
        # Probability-domain epsilon is relative to max cost; replicate.
        logd = sinkhorn_log(cost, mu, nu, epsilon=0.1 * scale, tol=1e-11,
                            max_iter=50_000)
        np.testing.assert_allclose(plain.plan, logd.plan, atol=1e-6)

    def test_survives_tiny_epsilon(self, random_problem):
        cost, mu, nu = random_problem
        result = sinkhorn_log(cost, mu, nu, epsilon=1e-3, tol=1e-8,
                              max_iter=200_000)
        assert result.converged
        # Near-exact regime: cost close to unregularised optimum.
        exact = float(np.sum(cost * transport_simplex(cost, mu, nu)))
        entropic = float(np.sum(cost * result.plan))
        assert entropic == pytest.approx(exact, rel=0.05, abs=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="incompatible"):
            sinkhorn_log(np.zeros((2, 2)), [0.5, 0.5], [0.3, 0.3, 0.4])


class TestSolveSinkhornWrapper:
    def test_returns_plan_with_supports(self, random_problem):
        cost, mu, nu = random_problem
        plan = solve_sinkhorn(cost, mu, nu, epsilon=0.1)
        assert plan.shape == cost.shape
        assert np.isfinite(plan.cost)
        plan.verify(mu, nu, atol=1e-6)
