"""Tests for Wasserstein barycentres and geodesics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.barycenter import (barycenter_1d, geodesic_point_1d,
                                 project_onto_grid, sinkhorn_barycenter)
from repro.ot.cost import squared_euclidean_cost
from repro.ot.onedim import wasserstein_1d


def _grid_mean(grid, pmf):
    return float(np.sum(np.asarray(grid) * np.asarray(pmf)))


class TestGeodesicPoint:
    def test_endpoints_recover_marginals(self, rng):
        xs0 = rng.normal(-1.0, 1.0, size=40)
        xs1 = rng.normal(2.0, 1.0, size=60)
        w0 = np.full(40, 1 / 40)
        w1 = np.full(60, 1 / 60)
        atoms0, weights0 = geodesic_point_1d(xs0, w0, xs1, w1, t=0.0)
        atoms1, weights1 = geodesic_point_1d(xs0, w0, xs1, w1, t=1.0)
        assert wasserstein_1d(atoms0, weights0, xs0, w0) < 0.1
        assert wasserstein_1d(atoms1, weights1, xs1, w1) < 0.1

    def test_midpoint_mean_is_average(self, rng):
        xs0 = rng.normal(-2.0, 0.5, size=100)
        xs1 = rng.normal(4.0, 0.5, size=100)
        w = np.full(100, 0.01)
        atoms, weights = geodesic_point_1d(xs0, w, xs1, w, t=0.5)
        mid_mean = float(np.sum(atoms * weights))
        assert mid_mean == pytest.approx(
            (xs0.mean() + xs1.mean()) / 2.0, abs=0.05)

    def test_midpoint_equidistant(self, rng):
        xs0 = rng.normal(-1.0, 1.0, size=80)
        xs1 = rng.normal(1.0, 1.0, size=80)
        w = np.full(80, 1 / 80)
        atoms, weights = geodesic_point_1d(xs0, w, xs1, w, t=0.5,
                                           n_levels=4096)
        d0 = wasserstein_1d(atoms, weights, xs0, w, p=2)
        d1 = wasserstein_1d(atoms, weights, xs1, w, p=2)
        assert d0 == pytest.approx(d1, rel=0.05)

    def test_invalid_t_rejected(self):
        with pytest.raises(ValidationError):
            geodesic_point_1d([0.0, 1.0], [0.5, 0.5],
                              [0.0, 1.0], [0.5, 0.5], t=1.5)


class TestProjectOntoGrid:
    def test_atom_on_node_keeps_mass(self):
        grid = np.array([0.0, 1.0, 2.0])
        pmf = project_onto_grid([1.0], [1.0], grid)
        np.testing.assert_allclose(pmf, [0.0, 1.0, 0.0])

    def test_atom_between_nodes_splits_linearly(self):
        grid = np.array([0.0, 1.0])
        pmf = project_onto_grid([0.25], [1.0], grid)
        np.testing.assert_allclose(pmf, [0.75, 0.25])

    def test_mean_preserved_for_interior_atoms(self, rng):
        grid = np.linspace(-3.0, 3.0, 31)
        atoms = rng.uniform(-2.9, 2.9, size=50)
        weights = rng.dirichlet(np.ones(50))
        pmf = project_onto_grid(atoms, weights, grid)
        assert _grid_mean(grid, pmf) == pytest.approx(
            float(np.sum(atoms * weights)), abs=1e-9)

    def test_out_of_range_atoms_clipped(self):
        grid = np.array([0.0, 1.0])
        pmf = project_onto_grid([-5.0, 6.0], [0.5, 0.5], grid)
        np.testing.assert_allclose(pmf, [0.5, 0.5])

    def test_normalised_output(self, rng):
        grid = np.linspace(0.0, 1.0, 11)
        pmf = project_onto_grid(rng.random(20), np.full(20, 0.05), grid)
        assert pmf.sum() == pytest.approx(1.0)

    def test_decreasing_grid_rejected(self):
        with pytest.raises(ValidationError, match="increasing"):
            project_onto_grid([0.5], [1.0], [1.0, 0.0])


class TestBarycenter1d:
    def test_identical_marginals_fixed_point(self, rng):
        grid = np.linspace(-3, 3, 40)
        pmf = np.exp(-0.5 * grid ** 2)
        pmf = pmf / pmf.sum()
        bary = barycenter_1d(grid, pmf, grid, pmf, grid, t=0.5)
        # Barycentre of (µ, µ) is µ (up to quantisation error).
        assert wasserstein_1d(grid, bary, grid, pmf) < 0.15

    def test_midpoint_mean(self):
        grid = np.linspace(0.0, 10.0, 101)
        pmf0 = np.zeros(101)
        pmf0[10] = 1.0  # atom at 1.0
        pmf1 = np.zeros(101)
        pmf1[90] = 1.0  # atom at 9.0
        bary = barycenter_1d(grid, pmf0, grid, pmf1, grid, t=0.5)
        assert _grid_mean(grid, bary) == pytest.approx(5.0, abs=0.05)

    def test_t_parameter_moves_target(self):
        grid = np.linspace(0.0, 10.0, 101)
        pmf0 = np.zeros(101)
        pmf0[0] = 1.0
        pmf1 = np.zeros(101)
        pmf1[100] = 1.0
        quarter = barycenter_1d(grid, pmf0, grid, pmf1, grid, t=0.25)
        assert _grid_mean(grid, quarter) == pytest.approx(2.5, abs=0.05)


class TestSinkhornBarycenter:
    def test_two_atoms_midpoint(self):
        grid = np.linspace(0.0, 1.0, 21).reshape(-1, 1)
        cost = squared_euclidean_cost(grid, grid)
        mu = np.zeros(21)
        mu[2] = 1.0
        nu = np.zeros(21)
        nu[18] = 1.0
        bary = sinkhorn_barycenter(cost, [mu, nu], epsilon=0.05)
        mean = float(np.sum(grid.ravel() * bary))
        assert mean == pytest.approx(0.5, abs=0.05)

    def test_weights_shift_barycenter(self):
        grid = np.linspace(0.0, 1.0, 21).reshape(-1, 1)
        cost = squared_euclidean_cost(grid, grid)
        mu = np.zeros(21)
        mu[0] = 1.0
        nu = np.zeros(21)
        nu[20] = 1.0
        skewed = sinkhorn_barycenter(cost, [mu, nu], weights=[0.9, 0.1],
                                     epsilon=0.05)
        mean = float(np.sum(grid.ravel() * skewed))
        assert mean < 0.35

    def test_requires_two_marginals(self):
        cost = np.zeros((3, 3))
        with pytest.raises(ValidationError, match="at least two"):
            sinkhorn_barycenter(cost, [np.full(3, 1 / 3)])

    def test_rejects_non_square_cost(self):
        with pytest.raises(ValidationError, match="square"):
            sinkhorn_barycenter(np.zeros((2, 3)),
                                [np.full(2, 0.5), np.full(2, 0.5)])
