"""Tests for closed-form 1-D optimal transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.onedim import (monotone_map, north_west_corner,
                             quantile_function, solve_1d, wasserstein_1d)


class TestNorthWestCorner:
    def test_identity_coupling_for_equal_marginals(self):
        mu = np.array([0.5, 0.5])
        plan = north_west_corner(mu, mu)
        np.testing.assert_allclose(plan, np.diag(mu))

    def test_marginals_respected(self, rng):
        mu = rng.dirichlet(np.ones(6))
        nu = rng.dirichlet(np.ones(9))
        plan = north_west_corner(mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-12)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-12)

    def test_sparsity_bound(self, rng):
        mu = rng.dirichlet(np.ones(10))
        nu = rng.dirichlet(np.ones(15))
        plan = north_west_corner(mu, nu)
        assert np.count_nonzero(plan) <= 10 + 15 - 1

    def test_monotone_staircase_structure(self):
        plan = north_west_corner([0.3, 0.7], [0.6, 0.4])
        # Mass must fill the upper-left before moving right/down.
        np.testing.assert_allclose(plan, [[0.3, 0.0], [0.3, 0.4]])

    def test_normalizes_inputs(self):
        plan = north_west_corner([3.0, 7.0], [6.0, 4.0])
        np.testing.assert_allclose(plan.sum(), 1.0)


class TestSolve1d:
    def test_point_masses(self):
        plan = solve_1d([0.0], [1.0], [5.0], [1.0])
        np.testing.assert_allclose(plan.matrix, [[1.0]])
        assert plan.cost == pytest.approx(25.0)

    def test_unsorted_supports_handled(self):
        # Supports deliberately unsorted; optimal monotone pairing must be
        # recovered after sorting: 0->1, 2->3.
        plan = solve_1d([2.0, 0.0], [0.5, 0.5], [1.0, 3.0], [0.5, 0.5])
        np.testing.assert_allclose(plan.matrix,
                                   [[0.0, 0.5], [0.5, 0.0]])
        assert plan.cost == pytest.approx(0.5 * 1.0 + 0.5 * 1.0)

    def test_cost_matches_wasserstein(self, rng):
        xs = rng.normal(size=8)
        ys = rng.normal(size=11)
        mu = rng.dirichlet(np.ones(8))
        nu = rng.dirichlet(np.ones(11))
        plan = solve_1d(xs, mu, ys, nu, p=2)
        w2 = wasserstein_1d(xs, mu, ys, nu, p=2)
        assert plan.cost == pytest.approx(w2 ** 2, rel=1e-8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="mismatch"):
            solve_1d([0.0, 1.0], [1.0], [0.0], [1.0])

    def test_plan_couples_marginals(self, rng):
        xs = rng.normal(size=5)
        ys = rng.normal(size=7)
        mu = rng.dirichlet(np.ones(5))
        nu = rng.dirichlet(np.ones(7))
        plan = solve_1d(xs, mu, ys, nu)
        plan.verify(mu, nu, atol=1e-9)


class TestWasserstein1d:
    def test_translation_distance(self):
        # W_p between a measure and its translate equals the shift.
        xs = np.array([0.0, 1.0, 2.0])
        w = np.array([0.2, 0.5, 0.3])
        for p in (1, 2, 3):
            dist = wasserstein_1d(xs, w, xs + 3.0, w, p=p)
            assert dist == pytest.approx(3.0, rel=1e-9)

    def test_zero_for_identical(self, rng):
        xs = rng.normal(size=6)
        w = rng.dirichlet(np.ones(6))
        assert wasserstein_1d(xs, w, xs, w) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self, rng):
        xs, ys = rng.normal(size=5), rng.normal(size=8)
        mu = rng.dirichlet(np.ones(5))
        nu = rng.dirichlet(np.ones(8))
        d_xy = wasserstein_1d(xs, mu, ys, nu)
        d_yx = wasserstein_1d(ys, nu, xs, mu)
        assert d_xy == pytest.approx(d_yx, rel=1e-9)

    def test_triangle_inequality(self, rng):
        xs, ys, zs = (rng.normal(size=6) for _ in range(3))
        ws = [rng.dirichlet(np.ones(6)) for _ in range(3)]
        d_xy = wasserstein_1d(xs, ws[0], ys, ws[1])
        d_yz = wasserstein_1d(ys, ws[1], zs, ws[2])
        d_xz = wasserstein_1d(xs, ws[0], zs, ws[2])
        assert d_xz <= d_xy + d_yz + 1e-9

    def test_two_point_known_value(self):
        # Half the mass moves by 1: W1 = 0.5, W2 = sqrt(0.5).
        d1 = wasserstein_1d([0.0, 1.0], [0.5, 0.5],
                            [0.0, 1.0], [1.0, 0.0], p=1)
        assert d1 == pytest.approx(0.5)
        d2 = wasserstein_1d([0.0, 1.0], [0.5, 0.5],
                            [0.0, 1.0], [1.0, 0.0], p=2)
        assert d2 == pytest.approx(np.sqrt(0.5))


class TestQuantileFunction:
    def test_basic_levels(self):
        xs = np.array([1.0, 2.0, 3.0])
        w = np.array([0.2, 0.3, 0.5])
        got = quantile_function(xs, w, [0.1, 0.2, 0.4, 0.9, 1.0])
        np.testing.assert_allclose(got, [1.0, 1.0, 2.0, 3.0, 3.0])

    def test_unsorted_support(self):
        got = quantile_function([3.0, 1.0], [0.5, 0.5], [0.25, 0.75])
        np.testing.assert_allclose(got, [1.0, 3.0])

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            quantile_function([0.0], [1.0], [1.5])


class TestMonotoneMap:
    def test_equal_sizes_is_sorted_matching(self, rng):
        xs = rng.normal(size=20)
        ys = rng.normal(size=20)
        mapped = monotone_map(xs, ys)
        # The i-th smallest source must map to the i-th smallest target.
        np.testing.assert_allclose(np.sort(mapped), np.sort(ys))
        order = np.argsort(xs)
        np.testing.assert_allclose(mapped[order], np.sort(ys))

    def test_map_is_monotone(self, rng):
        xs = np.sort(rng.normal(size=30))
        ys = rng.normal(size=50)
        mapped = monotone_map(xs, ys)
        assert np.all(np.diff(mapped) >= 0.0)

    def test_preserves_input_order(self):
        mapped = monotone_map([2.0, 0.0, 1.0], [10.0, 20.0, 30.0])
        assert mapped[1] <= mapped[2] <= mapped[0]
