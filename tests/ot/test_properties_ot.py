"""Property-based tests (hypothesis) for the OT substrate invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ot.coupling import marginal_residual
from repro.ot.lp import transport_lp
from repro.ot.network_simplex import transport_simplex
from repro.ot.onedim import (north_west_corner, quantile_function, solve_1d,
                             wasserstein_1d)
from repro.ot.sinkhorn import sinkhorn

# -- strategies ---------------------------------------------------------------

def weights(n: int):
    """Strictly positive weight vectors of length n (pre-normalisation)."""
    return arrays(np.float64, n,
                  elements=st.floats(0.05, 10.0, allow_nan=False))


def supports(n: int):
    return arrays(np.float64, n,
                  elements=st.floats(-50.0, 50.0, allow_nan=False,
                                     allow_infinity=False))


# -- north-west corner / monotone coupling ------------------------------------

@given(mu=weights(7), nu=weights(5))
@settings(max_examples=60, deadline=None)
def test_nw_corner_is_always_a_coupling(mu, nu):
    plan = north_west_corner(mu, nu)
    assert np.all(plan >= 0.0)
    assert marginal_residual(plan, mu / mu.sum(), nu / nu.sum()) < 1e-9


@given(mu=weights(6), nu=weights(6))
@settings(max_examples=60, deadline=None)
def test_nw_corner_sparsity(mu, nu):
    plan = north_west_corner(mu, nu)
    assert np.count_nonzero(plan) <= 6 + 6 - 1


# -- 1-D exact OT --------------------------------------------------------------

@given(xs=supports(6), ys=supports(8), mu=weights(6), nu=weights(8))
@settings(max_examples=60, deadline=None)
def test_solve_1d_couples_and_is_consistent(xs, ys, mu, nu):
    plan = solve_1d(xs, mu, ys, nu, p=2)
    mu_n, nu_n = mu / mu.sum(), nu / nu.sum()
    assert marginal_residual(plan.matrix, mu_n, nu_n) < 1e-9
    w2 = wasserstein_1d(xs, mu, ys, nu, p=2)
    assert plan.cost == pytest.approx(w2 ** 2, rel=1e-6, abs=1e-9)


@given(xs=supports(5), mu=weights(5), shift=st.floats(-10.0, 10.0))
@settings(max_examples=60, deadline=None)
def test_wasserstein_translation_invariance(xs, mu, shift):
    # W_2(µ, µ + c) == |c| for any measure µ.
    dist = wasserstein_1d(xs, mu, xs + shift, mu, p=2)
    assert dist == pytest.approx(abs(shift), rel=1e-6, abs=1e-8)


@given(xs=supports(5), ys=supports(7), mu=weights(5), nu=weights(7))
@settings(max_examples=60, deadline=None)
def test_wasserstein_nonnegative_and_symmetric(xs, ys, mu, nu):
    d_xy = wasserstein_1d(xs, mu, ys, nu, p=2)
    d_yx = wasserstein_1d(ys, nu, xs, mu, p=2)
    assert d_xy >= 0.0
    assert d_xy == pytest.approx(d_yx, rel=1e-7, abs=1e-10)


@given(xs=supports(6), mu=weights(6),
       levels=arrays(np.float64, 10, elements=st.floats(0.0, 1.0)))
@settings(max_examples=60, deadline=None)
def test_quantile_function_monotone_in_level(xs, mu, levels):
    sorted_levels = np.sort(levels)
    values = quantile_function(xs, mu, sorted_levels)
    assert np.all(np.diff(values) >= -1e-12)


# -- exact solvers agree --------------------------------------------------------

@given(cost=arrays(np.float64, (4, 5),
                   elements=st.floats(0.0, 10.0, allow_nan=False)),
       mu=weights(4), nu=weights(5))
@settings(max_examples=30, deadline=None)
def test_simplex_matches_lp_oracle(cost, mu, nu):
    simplex_plan = transport_simplex(cost, mu, nu)
    lp_plan = transport_lp(cost, mu, nu)
    value_simplex = float(np.sum(cost * simplex_plan))
    value_lp = float(np.sum(cost * lp_plan))
    assert value_simplex == pytest.approx(value_lp, rel=1e-6, abs=1e-8)


# -- Sinkhorn -------------------------------------------------------------------

@given(mu=weights(5), nu=weights(6))
@settings(max_examples=20, deadline=None)
def test_sinkhorn_cost_upper_bounds_exact(mu, nu):
    rng = np.random.default_rng(0)
    xs = rng.normal(size=(5, 1))
    ys = rng.normal(size=(6, 1))
    cost = (xs - ys.T) ** 2
    exact = float(np.sum(cost * transport_simplex(cost, mu, nu)))
    result = sinkhorn(cost, mu, nu, epsilon=0.05, tol=1e-10,
                      max_iter=100_000)
    entropic = float(np.sum(cost * result.plan))
    # Entropic smoothing cannot beat the exact optimum (up to round-off).
    assert entropic >= exact - 1e-8
