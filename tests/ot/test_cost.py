"""Tests for ground-cost construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ot.cost import (cost_matrix, euclidean_cost, lp_cost,
                           make_cost_function, pointwise_cost,
                           squared_euclidean_cost)


class TestSquaredEuclidean:
    def test_matches_direct_computation(self, rng):
        xs = rng.normal(size=(5, 3))
        ys = rng.normal(size=(7, 3))
        got = squared_euclidean_cost(xs, ys)
        want = ((xs[:, None, :] - ys[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_diagonal_zero_on_identical_supports(self, rng):
        xs = rng.normal(size=(6, 2))
        cost = squared_euclidean_cost(xs, xs)
        np.testing.assert_allclose(np.diag(cost), 0.0, atol=1e-10)

    def test_never_negative(self, rng):
        xs = rng.normal(size=(20, 4)) * 1e6  # stress the expanded form
        cost = squared_euclidean_cost(xs, xs)
        assert np.all(cost >= 0.0)

    def test_1d_inputs_accepted(self):
        cost = squared_euclidean_cost([0.0, 1.0], [2.0])
        np.testing.assert_allclose(cost, [[4.0], [1.0]])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="feature dimension"):
            squared_euclidean_cost(np.zeros((2, 2)), np.zeros((2, 3)))


class TestLpCost:
    def test_p1_is_manhattan(self):
        cost = lp_cost([[0.0, 0.0]], [[1.0, 2.0]], p=1)
        np.testing.assert_allclose(cost, [[3.0]])

    def test_p2_matches_sqeuclidean(self, rng):
        xs = rng.normal(size=(4, 2))
        ys = rng.normal(size=(5, 2))
        np.testing.assert_allclose(lp_cost(xs, ys, 2),
                                   squared_euclidean_cost(xs, ys),
                                   atol=1e-10)

    def test_p3(self):
        cost = lp_cost([0.0], [2.0], p=3)
        np.testing.assert_allclose(cost, [[8.0]])

    def test_invalid_p_rejected(self):
        with pytest.raises(ValidationError):
            lp_cost([0.0], [1.0], p=0)


class TestDispatch:
    def test_euclidean_is_sqrt_of_squared(self, rng):
        xs = rng.normal(size=(3, 2))
        ys = rng.normal(size=(4, 2))
        np.testing.assert_allclose(euclidean_cost(xs, ys) ** 2,
                                   squared_euclidean_cost(xs, ys),
                                   atol=1e-10)

    def test_cost_matrix_metric_names(self, rng):
        xs = rng.normal(size=(3, 1))
        ys = rng.normal(size=(3, 1))
        np.testing.assert_allclose(
            cost_matrix(xs, ys, metric="sqeuclidean"),
            squared_euclidean_cost(xs, ys))
        np.testing.assert_allclose(
            cost_matrix(xs, ys, metric="euclidean"),
            euclidean_cost(xs, ys))
        np.testing.assert_allclose(
            cost_matrix(xs, ys, metric="lp", p=1), lp_cost(xs, ys, 1))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            cost_matrix([0.0], [1.0], metric="cosine")

    def test_make_cost_function_closure(self):
        fn = make_cost_function("lp", p=1)
        np.testing.assert_allclose(fn([0.0], [3.0]), [[3.0]])
        assert "lp" in fn.__name__


class TestPointwiseCost:
    """pointwise_cost is cost_matrix's per-pair counterpart: sparse-
    support solvers rely on the two never disagreeing."""

    @pytest.mark.parametrize("metric,p", [("sqeuclidean", 2),
                                          ("euclidean", 2),
                                          ("lp", 1), ("lp", 2), ("lp", 3)])
    def test_matches_cost_matrix_entries(self, rng, metric, p):
        xs = rng.normal(size=(7, 2))
        ys = rng.normal(size=(5, 2))
        full = cost_matrix(xs, ys, metric=metric, p=p)
        rows = np.array([0, 1, 6, 3, 3])
        cols = np.array([4, 0, 2, 2, 1])
        np.testing.assert_allclose(
            pointwise_cost(xs[rows], ys[cols], metric=metric, p=p),
            full[rows, cols])

    def test_one_dimensional_inputs(self):
        np.testing.assert_allclose(
            pointwise_cost([0.0, 1.0], [2.0, -1.0]), [4.0, 4.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="one-to-one"):
            pointwise_cost([[0.0]], [[1.0], [2.0]])

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            pointwise_cost([0.0], [1.0], metric="cosine")
