"""Integration tests with more than two unprotected groups.

The paper's definitions never require ``|U| = 2``; the algorithms are
``u``-indexed.  These tests run the full machinery with three-plus groups
(as produced, e.g., by binning a continuous attribute) and with higher
feature counts, guarding the generality the code claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometric import GeometricRepairer
from repro.core.monge import MongeRepairer
from repro.core.repair import DistributionalRepairer
from repro.data.dataset import FairnessDataset
from repro.metrics.fairness import conditional_dependence_energy
from repro.metrics.proxies import conditional_disparate_impact


@pytest.fixture(scope="module")
def three_group_split():
    rng = np.random.default_rng(0)
    n = 4500
    u = rng.integers(0, 3, size=n)
    s = (rng.random(n) < 0.4).astype(int)
    # s-shift grows with u: per-group unfairness of different strength.
    x = rng.normal(size=(n, 2))
    x[:, 0] += 0.8 * s * (u + 1) / 3.0
    x[:, 1] += 0.5 * s - 0.3 * u
    data = FairnessDataset(x, s, u)
    return data.split(n_research=900, rng=0)


class TestThreeGroups:
    def test_energy_report_covers_all_groups(self, three_group_split):
        archive = three_group_split.archive
        report = conditional_dependence_energy(archive.features,
                                               archive.s, archive.u)
        assert set(report.per_group) == {0, 1, 2}
        assert sum(report.group_weights.values()) == pytest.approx(1.0)

    def test_distributional_repair(self, three_group_split):
        repairer = DistributionalRepairer(n_states=30, rng=1)
        repairer.fit(three_group_split.research)
        assert repairer.plan.u_values == (0, 1, 2)
        repaired = repairer.transform(three_group_split.archive)
        before = conditional_dependence_energy(
            three_group_split.archive.features,
            three_group_split.archive.s,
            three_group_split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 2.0

    def test_geometric_repair(self, three_group_split):
        repaired = GeometricRepairer().fit_transform(
            three_group_split.research)
        before = conditional_dependence_energy(
            three_group_split.research.features,
            three_group_split.research.s,
            three_group_split.research.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 2.0

    def test_monge_repair(self, three_group_split):
        repairer = MongeRepairer().fit(three_group_split.research)
        repaired = repairer.transform(three_group_split.archive)
        before = conditional_dependence_energy(
            three_group_split.archive.features,
            three_group_split.archive.s,
            three_group_split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 2.0

    def test_conditional_di_per_group(self, three_group_split):
        archive = three_group_split.archive
        outcomes = (archive.features[:, 0] > 0.4).astype(int)
        di = conditional_disparate_impact(outcomes, archive.s, archive.u)
        assert set(di) == {0, 1, 2}


class TestHigherDimensionalFeatures:
    @pytest.fixture(scope="class")
    def wide_split(self):
        rng = np.random.default_rng(1)
        n, d = 3000, 5
        u = rng.integers(0, 2, size=n)
        s = rng.integers(0, 2, size=n)
        x = rng.normal(size=(n, d))
        x[:, 0] += 1.0 * s
        x[:, 3] -= 0.7 * s
        data = FairnessDataset(x, s, u)
        return data.split(n_research=600, rng=1)

    def test_d5_repair_targets_only_dependent_features(self, wide_split):
        repairer = DistributionalRepairer(n_states=30, rng=2)
        repairer.fit(wide_split.research)
        assert len(repairer.plan.feature_plans) == 2 * 5
        repaired = repairer.transform(wide_split.archive)
        before = conditional_dependence_energy(
            wide_split.archive.features, wide_split.archive.s,
            wide_split.archive.u).per_feature
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).per_feature
        # The biased features improve dramatically ...
        assert after[0] < before[0] / 3.0
        assert after[3] < before[3] / 3.0
        # ... and the already-fair ones are not made unfair.
        for k in (1, 2, 4):
            assert after[k] < 0.1

    def test_d5_damage_concentrated_on_biased_features(self, wide_split):
        from repro.core.partial import repair_damage
        repairer = DistributionalRepairer(n_states=30, rng=2)
        repairer.fit(wide_split.research)
        repaired = repairer.transform(wide_split.archive)
        damage = repair_damage(wide_split.archive, repaired)["rms"]
        # The shifted features move further than the fair ones.
        assert damage[0] > damage[1]
        assert damage[3] > damage[2]
