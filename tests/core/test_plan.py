"""Tests for the repair-plan containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_feature_plan
from repro.core.plan import FeaturePlan, RepairPlan
from repro.density.grid import InterpolationGrid
from repro.exceptions import ValidationError
from repro.ot.coupling import TransportPlan


@pytest.fixture
def feature_plan(rng):
    samples = {0: rng.normal(-1.0, 1.0, size=60),
               1: rng.normal(1.0, 1.0, size=80)}
    return design_feature_plan(samples, 20)


class TestFeaturePlan:
    def test_structure(self, feature_plan):
        assert feature_plan.grid.n_states == 20
        assert feature_plan.s_values == (0, 1)
        assert feature_plan.barycenter.sum() == pytest.approx(1.0)
        for s in (0, 1):
            assert feature_plan.marginals[s].sum() == pytest.approx(1.0)

    def test_conditional_cdfs(self, feature_plan):
        cdfs = feature_plan.conditional_cdfs(0)
        assert cdfs.shape == (20, 20)
        np.testing.assert_allclose(cdfs[:, -1], 1.0, atol=1e-9)
        assert np.all(np.diff(cdfs, axis=1) >= -1e-12)

    def test_conditional_cdfs_unknown_s(self, feature_plan):
        with pytest.raises(ValidationError, match="no transport plan"):
            feature_plan.conditional_cdfs(2)

    def test_sparse_conditional_cdfs_match_dense_and_memoise(self, rng):
        samples = {0: rng.normal(-1.0, 1.0, size=60),
                   1: rng.normal(1.0, 1.0, size=80)}
        dense = design_feature_plan(samples, 20)
        sparse = design_feature_plan(samples, 20, sparse_plans=True)
        for s in (0, 1):
            np.testing.assert_allclose(sparse.conditional_cdfs(s),
                                       dense.conditional_cdfs(s),
                                       atol=1e-12)
        # Repeated inspection queries hit the bounded LRU memo instead
        # of re-densifying the CSR plan (the PR 4 regression).
        first = sparse.conditional_cdfs(0)
        assert sparse.conditional_cdfs(0) is first
        stats = sparse._sparse_cdf_cache.stats()
        assert stats["hits"] >= 1
        assert stats["capacity"] >= stats["size"]
        # The dense path must not pay for the sparse memo.
        assert dense._sparse_cdf_cache.stats()["misses"] == 0

    def test_expected_targets_within_grid(self, feature_plan):
        targets = feature_plan.expected_targets(1)
        assert targets.shape == (20,)
        assert np.all(targets >= feature_plan.grid.low - 1e-9)
        assert np.all(targets <= feature_plan.grid.high + 1e-9)

    def test_expected_targets_monotone_for_exact_plans(self, feature_plan):
        # Monotone couplings yield monotone conditional-mean maps.
        for s in (0, 1):
            targets = feature_plan.expected_targets(s)
            assert np.all(np.diff(targets) >= -1e-9)

    def test_wrong_barycenter_length_rejected(self, feature_plan):
        with pytest.raises(ValidationError, match="barycenter"):
            FeaturePlan(grid=feature_plan.grid,
                        marginals=feature_plan.marginals,
                        barycenter=np.ones(3) / 3,
                        transports=feature_plan.transports)

    def test_wrong_transport_shape_rejected(self, feature_plan):
        bad = TransportPlan(np.ones((3, 3)) / 9, np.arange(3.0),
                            np.arange(3.0))
        with pytest.raises(ValidationError, match="transport"):
            FeaturePlan(grid=feature_plan.grid,
                        marginals=feature_plan.marginals,
                        barycenter=feature_plan.barycenter,
                        transports={0: bad, 1: bad})

    def test_non_plan_transport_rejected(self, feature_plan):
        with pytest.raises(ValidationError, match="TransportPlan"):
            FeaturePlan(grid=feature_plan.grid,
                        marginals=feature_plan.marginals,
                        barycenter=feature_plan.barycenter,
                        transports={0: np.eye(20), 1: np.eye(20)})


class TestRepairPlan:
    def test_structure(self, feature_plan):
        plan = RepairPlan(feature_plans={(0, 0): feature_plan,
                                         (1, 0): feature_plan},
                          n_features=1)
        assert plan.u_values == (0, 1)
        assert plan.covers(0) and plan.covers(1)
        assert not plan.covers(2)
        assert plan.total_states() == 40

    def test_feature_plan_lookup(self, feature_plan):
        plan = RepairPlan(feature_plans={(0, 0): feature_plan},
                          n_features=1)
        assert plan.feature_plan(0, 0) is feature_plan
        with pytest.raises(ValidationError, match="no plan designed"):
            plan.feature_plan(1, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            RepairPlan(feature_plans={}, n_features=1)

    def test_bad_key_rejected(self, feature_plan):
        with pytest.raises(ValidationError, match=r"\(u, k\)"):
            RepairPlan(feature_plans={"bad": feature_plan}, n_features=1)

    def test_incomplete_feature_coverage_rejected(self, feature_plan):
        with pytest.raises(ValidationError, match="cover"):
            RepairPlan(feature_plans={(0, 1): feature_plan},
                       n_features=2)
