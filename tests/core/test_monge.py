"""Tests for the Monge-map repairer (the paper's Section VI limit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monge import MongeFeatureMap, MongeRepairer
from repro.core.repair import DistributionalRepairer
from repro.data.dataset import FairnessDataset
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.fairness import conditional_dependence_energy


class TestMongeFeatureMap:
    def test_monotone_interpolation(self):
        mapping = MongeFeatureMap(knots=np.array([0.0, 1.0, 2.0]),
                                  images=np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(mapping([0.5, 1.5]), [15.0, 25.0])

    def test_out_of_range_saturates(self):
        mapping = MongeFeatureMap(knots=np.array([0.0, 1.0]),
                                  images=np.array([5.0, 6.0]))
        np.testing.assert_allclose(mapping([-10.0, 10.0]), [5.0, 6.0])

    def test_images_forced_monotone(self):
        mapping = MongeFeatureMap(knots=np.array([0.0, 1.0, 2.0]),
                                  images=np.array([1.0, 0.5, 2.0]))
        assert np.all(np.diff(mapping.images) >= 0.0)

    def test_invalid_knots_rejected(self):
        with pytest.raises(ValidationError, match="increasing"):
            MongeFeatureMap(knots=np.array([1.0, 1.0]),
                            images=np.array([0.0, 1.0]))
        with pytest.raises(ValidationError, match="matching"):
            MongeFeatureMap(knots=np.array([0.0, 1.0]),
                            images=np.array([0.0]))


class TestMongeRepairer:
    def test_quenches_dependence(self, rng):
        from repro.data.simulated import paper_simulation_spec
        split = paper_simulation_spec().sample(5500, rng=rng).split(
            n_research=1000, rng=rng)
        repairer = MongeRepairer().fit(split.research)
        repaired = repairer.transform(split.archive)
        before = conditional_dependence_energy(
            split.archive.features, split.archive.s,
            split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 3.0

    def test_deterministic(self, paper_split):
        repairer = MongeRepairer().fit(paper_split.research)
        a = repairer.transform(paper_split.archive)
        b = repairer.transform(paper_split.archive)
        np.testing.assert_array_equal(a.features, b.features)

    def test_individual_fairness_order_preserved(self, paper_split):
        # Monge maps are monotone: within a subgroup, the repair never
        # swaps the order of two individuals — the individual-fairness
        # property the paper anticipates.
        repairer = MongeRepairer().fit(paper_split.research)
        repaired = repairer.transform(paper_split.archive)
        for u in (0, 1):
            for s in (0, 1):
                mask = paper_split.archive.group_mask(u, s)
                for k in range(2):
                    original = paper_split.archive.features[mask, k]
                    fixed = repaired.features[mask, k]
                    order = np.argsort(original)
                    assert np.all(np.diff(fixed[order]) >= -1e-12)

    def test_identical_inputs_identical_outputs(self, paper_split):
        # Feature-similar points repaired similarly — the contrast with
        # the stochastic Algorithm 2, which can split them.
        repairer = MongeRepairer().fit(paper_split.research)
        x = np.array([[0.3, -0.2], [0.3, -0.2]])
        clones = FairnessDataset(x, [1, 1], [0, 0])
        repaired = repairer.transform(clones)
        np.testing.assert_array_equal(repaired.features[0],
                                      repaired.features[1])

    def test_both_groups_align(self, rng):
        from repro.data.simulated import paper_simulation_spec
        split = paper_simulation_spec().sample(6000, rng=rng).split(
            n_research=1500, rng=rng)
        repairer = MongeRepairer().fit(split.research)
        repaired = repairer.transform(split.archive)
        # The repaired group means coincide up to the research
        # sample-mean error the maps are anchored to (SE ~ n_group^-1/2).
        for u in (0, 1):
            for k in (0, 1):
                v0 = repaired.features[repaired.group_mask(u, 0), k]
                v1 = repaired.features[repaired.group_mask(u, 1), k]
                assert abs(v0.mean() - v1.mean()) < 0.35
                assert abs(np.median(v0) - np.median(v1)) < 0.4

    def test_continuous_outputs(self, paper_split):
        # Unlike Algorithm 2, outputs are not quantised to any grid: the
        # number of distinct repaired values matches the input count.
        repairer = MongeRepairer().fit(paper_split.research)
        repaired = repairer.transform(paper_split.archive)
        values = repaired.features[:, 0]
        assert np.unique(values).size > 0.9 * values.size

    def test_t_zero_leaves_group0_nearly_fixed(self, paper_split):
        repairer = MongeRepairer(t=0.0).fit(paper_split.research)
        repaired = repairer.transform(paper_split.archive)
        for u in (0, 1):
            mask = paper_split.archive.group_mask(u, 0)
            drift = np.abs(repaired.features[mask]
                           - paper_split.archive.features[mask]).mean()
            assert drift < 0.25  # T is ~identity for the source class

    def test_not_fitted(self, paper_split):
        repairer = MongeRepairer()
        assert not repairer.is_fitted
        with pytest.raises(NotFittedError):
            repairer.transform(paper_split.archive)
        with pytest.raises(NotFittedError):
            repairer.feature_map(0, 0, 0)

    def test_unknown_cell_rejected(self, paper_split):
        repairer = MongeRepairer().fit(paper_split.research)
        with pytest.raises(ValidationError, match="no Monge map"):
            repairer.feature_map(5, 0, 0)

    def test_feature_mismatch_rejected(self, paper_split, rng):
        repairer = MongeRepairer().fit(paper_split.research)
        bad = FairnessDataset(rng.normal(size=(4, 3)),
                              rng.integers(0, 2, 4),
                              rng.integers(0, 2, 4))
        with pytest.raises(ValidationError, match="features"):
            repairer.transform(bad)

    def test_tiny_subgroup_rejected(self, rng):
        data = FairnessDataset(rng.normal(size=(5, 1)),
                               [0, 1, 1, 1, 1], [0, 0, 0, 0, 0])
        with pytest.raises(ValidationError, match=">= 2"):
            MongeRepairer().fit(data)

    def test_comparable_to_distributional(self, paper_split):
        monge = MongeRepairer().fit(paper_split.research)
        stochastic = DistributionalRepairer(n_states=50, rng=1).fit(
            paper_split.research)
        e_monge = conditional_dependence_energy(
            *(lambda d: (d.features, d.s, d.u))(
                monge.transform(paper_split.archive))).total
        e_stoch = conditional_dependence_energy(
            *(lambda d: (d.features, d.s, d.u))(
                stochastic.transform(paper_split.archive))).total
        # Same ballpark: neither dominates by an order of magnitude.
        assert e_monge < 10.0 * e_stoch
        assert e_stoch < 10.0 * e_monge
