"""Property-based tests for the repair algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.design import design_feature_plan
from repro.core.geometric import geometric_repair_1d
from repro.core.repair import repair_feature_values
from repro.ot.coupling import marginal_residual


def samples(n: int, lo=-20.0, hi=20.0):
    return arrays(np.float64, n,
                  elements=st.floats(lo, hi, allow_nan=False))


@given(xs0=samples(12), xs1=samples(15), seed=st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_repair_outputs_stay_on_grid(xs0, xs1, seed):
    plan = design_feature_plan({0: xs0, 1: xs1}, 12)
    rng = np.random.default_rng(seed)
    values = rng.uniform(np.min(xs0), np.max(xs0) + 1e-9, size=30)
    repaired = repair_feature_values(values, plan, 0, rng=rng)
    assert repaired.shape == values.shape
    assert np.all(np.isin(repaired, plan.grid.nodes))


@given(xs0=samples(10), xs1=samples(10),
       n_states=st.integers(3, 25))
@settings(max_examples=40, deadline=None)
def test_designed_transports_always_couple(xs0, xs1, n_states):
    plan = design_feature_plan({0: xs0, 1: xs1}, n_states)
    for s in (0, 1):
        residual = marginal_residual(plan.transports[s].matrix,
                                     plan.marginals[s], plan.barycenter)
        assert residual < 1e-7


@given(xs0=samples(8), xs1=samples(8),
       t=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_geometric_repair_bounded_by_hull(xs0, xs1, t):
    rep0, rep1 = geometric_repair_1d(xs0, xs1, t)
    lo = min(xs0.min(), xs1.min()) - 1e-9
    hi = max(xs0.max(), xs1.max()) + 1e-9
    assert np.all((rep0 >= lo) & (rep0 <= hi))
    assert np.all((rep1 >= lo) & (rep1 <= hi))


@given(xs0=samples(8), xs1=samples(8))
@settings(max_examples=40, deadline=None)
def test_geometric_half_repair_means_agree(xs0, xs1):
    rep0, rep1 = geometric_repair_1d(xs0, xs1, t=0.5)
    # Both repaired samples approximate the same barycentre, so their
    # means coincide: each is the mean of (x0_sorted + x1_quantiles)/2
    # under the same coupling.
    assert rep0.mean() == pytest.approx(
        (xs0.mean() + xs1.mean()) / 2.0, abs=1e-6)


@given(xs=samples(10), shift=st.floats(-5.0, 5.0), seed=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_identical_marginals_repair_is_near_identity_in_mean(xs, shift,
                                                             seed):
    # When both subgroups share a distribution, the barycentre equals it
    # and repair should preserve the sample mean (up to grid quantisation).
    plan = design_feature_plan({0: xs, 1: xs}, 20,
                               marginal_estimator="linear")
    rng = np.random.default_rng(seed)
    repaired = repair_feature_values(xs, plan, 0, rng=rng)
    spread = max(xs.max() - xs.min(), 1e-3)
    assert abs(repaired.mean() - xs.mean()) < 0.35 * spread + 1e-6
