"""Tests for Algorithm 2 (off-sample repair) and the estimator API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_feature_plan, design_repair
from repro.core.repair import (DistributionalRepairer,
                               prepare_feature_repair, repair_dataset,
                               repair_feature_values)
from repro.data.simulated import paper_simulation_spec
from repro.data.streaming import ArchiveStream
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.fairness import conditional_dependence_energy


@pytest.fixture
def fitted_feature_plan(rng):
    samples = {0: rng.normal(-1.0, 1.0, size=150),
               1: rng.normal(1.0, 1.0, size=200)}
    return design_feature_plan(samples, 40)


class TestRepairFeatureValues:
    def test_output_on_grid_nodes(self, fitted_feature_plan, rng):
        values = rng.normal(-1.0, 1.0, size=50)
        repaired = repair_feature_values(values, fitted_feature_plan, 0,
                                         rng=rng)
        nodes = fitted_feature_plan.grid.nodes
        assert np.all(np.isin(repaired, nodes))

    def test_cardinality_preserved(self, fitted_feature_plan, rng):
        values = rng.normal(size=77)
        repaired = repair_feature_values(values, fitted_feature_plan, 1,
                                         rng=rng)
        assert repaired.shape == values.shape

    def test_empty_input(self, fitted_feature_plan, rng):
        out = repair_feature_values(np.array([]), fitted_feature_plan, 0,
                                    rng=rng)
        assert out.size == 0

    def test_repaired_distributions_converge(self, fitted_feature_plan,
                                             rng):
        # Both subgroups must be pushed toward the same barycentre.
        xs0 = rng.normal(-1.0, 1.0, size=4000)
        xs1 = rng.normal(1.0, 1.0, size=4000)
        rep0 = repair_feature_values(xs0, fitted_feature_plan, 0, rng=rng)
        rep1 = repair_feature_values(xs1, fitted_feature_plan, 1, rng=rng)
        assert abs(xs0.mean() - xs1.mean()) > 1.5
        assert abs(rep0.mean() - rep1.mean()) < 0.2

    def test_out_of_range_values_repaired_via_boundary(
            self, fitted_feature_plan, rng):
        values = np.array([-50.0, 50.0])
        repaired = repair_feature_values(values, fitted_feature_plan, 0,
                                         rng=rng)
        nodes = fitted_feature_plan.grid.nodes
        assert np.all(np.isin(repaired, nodes))

    def test_stochastic_rounding_uses_tau(self, rng):
        # With a two-row plan mapping row0 -> node0 and row1 -> node1, a
        # point at tau = 0.25 must choose row1 about 25% of the time.
        samples = {0: np.array([0.0] * 30 + [1.0] * 30),
                   1: np.array([0.0] * 30 + [1.0] * 30)}
        plan = design_feature_plan(samples, 2,
                                   marginal_estimator="linear")
        values = np.full(8000, 0.25)
        repaired = repair_feature_values(values, plan, 0, rng=rng)
        fraction_upper = np.mean(repaired == 1.0)
        # Symmetric marginals -> identity-ish plans; row choice shows
        # through directly.
        assert fraction_upper == pytest.approx(0.25, abs=0.05)

    def test_nearest_rounding_deterministic_rows(self, fitted_feature_plan,
                                                 rng):
        values = rng.normal(size=30)
        a = repair_feature_values(values, fitted_feature_plan, 0,
                                  rng=np.random.default_rng(0),
                                  rounding="nearest")
        b = repair_feature_values(values, fitted_feature_plan, 0,
                                  rng=np.random.default_rng(0),
                                  rounding="nearest")
        np.testing.assert_allclose(a, b)

    def test_barycentric_output_is_deterministic(self, fitted_feature_plan,
                                                 rng):
        values = rng.normal(size=25)
        a = repair_feature_values(values, fitted_feature_plan, 0,
                                  rounding="nearest", output="barycentric")
        b = repair_feature_values(values, fitted_feature_plan, 0,
                                  rounding="nearest", output="barycentric")
        np.testing.assert_allclose(a, b)

    def test_barycentric_output_not_restricted_to_nodes(
            self, fitted_feature_plan, rng):
        values = rng.normal(size=200)
        repaired = repair_feature_values(values, fitted_feature_plan, 0,
                                         rng=rng, output="barycentric")
        on_node = np.isin(repaired, fitted_feature_plan.grid.nodes)
        assert not np.all(on_node)

    def test_invalid_modes_rejected(self, fitted_feature_plan):
        with pytest.raises(ValidationError, match="rounding"):
            repair_feature_values([0.0], fitted_feature_plan, 0,
                                  rounding="round-robin")
        with pytest.raises(ValidationError, match="output"):
            repair_feature_values([0.0], fitted_feature_plan, 0,
                                  output="expectation")


class TestRepairDataset:
    def test_labels_untouched(self, paper_split, rng):
        plan = design_repair(paper_split.research, 30)
        repaired = repair_dataset(paper_split.archive, plan, rng=rng)
        np.testing.assert_array_equal(repaired.s, paper_split.archive.s)
        np.testing.assert_array_equal(repaired.u, paper_split.archive.u)
        assert len(repaired) == len(paper_split.archive)

    def test_feature_arity_checked(self, paper_split, rng):
        from repro.data.dataset import FairnessDataset
        plan = design_repair(paper_split.research, 30)
        bad = FairnessDataset(rng.normal(size=(10, 3)),
                              rng.integers(0, 2, 10),
                              rng.integers(0, 2, 10))
        with pytest.raises(ValidationError, match="features"):
            repair_dataset(bad, plan, rng=rng)

    def test_unknown_group_rejected(self, paper_split, rng):
        from repro.data.dataset import FairnessDataset
        plan = design_repair(paper_split.research, 30)
        alien = FairnessDataset(rng.normal(size=(6, 2)),
                                [0, 1, 0, 1, 0, 1],
                                [2, 2, 2, 2, 2, 2])
        with pytest.raises(ValidationError, match="no design"):
            repair_dataset(alien, plan, rng=rng)

    def test_reduces_conditional_dependence(self, rng):
        spec = paper_simulation_spec()
        split = spec.sample(4000, rng=rng).split(n_research=800, rng=rng)
        plan = design_repair(split.research, 40)
        repaired = repair_dataset(split.archive, plan, rng=rng)
        before = conditional_dependence_energy(
            split.archive.features, split.archive.s,
            split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 3.0


class TestDistributionalRepairer:
    def test_not_fitted_errors(self, paper_split):
        repairer = DistributionalRepairer()
        assert not repairer.is_fitted
        with pytest.raises(NotFittedError):
            repairer.transform(paper_split.archive)
        with pytest.raises(NotFittedError):
            _ = repairer.plan
        with pytest.raises(NotFittedError):
            list(repairer.transform_stream([paper_split.archive]))

    def test_fit_transform_round_trip(self, paper_split):
        repairer = DistributionalRepairer(n_states=25, rng=0)
        repaired = repairer.fit_transform(paper_split.research)
        assert repairer.is_fitted
        assert len(repaired) == len(paper_split.research)

    def test_transform_rng_override_reproducible(self, paper_split):
        repairer = DistributionalRepairer(n_states=25, rng=0)
        repairer.fit(paper_split.research)
        a = repairer.transform(paper_split.archive, rng=5)
        b = repairer.transform(paper_split.archive, rng=5)
        np.testing.assert_allclose(a.features, b.features)

    def test_invalid_modes_rejected_at_init(self):
        with pytest.raises(ValidationError):
            DistributionalRepairer(rounding="bogus")
        with pytest.raises(ValidationError):
            DistributionalRepairer(output="bogus")

    def test_transform_stream_matches_batchwise(self, paper_split):
        repairer = DistributionalRepairer(n_states=25, rng=0)
        repairer.fit(paper_split.research)
        stream = ArchiveStream(paper_split.archive, batch_size=256)
        batches = list(repairer.transform_stream(stream, rng=9))
        rebuilt = np.vstack([b.features for b in batches])
        assert rebuilt.shape == paper_split.archive.features.shape
        # Streaming is reproducible under the same seed ...
        again = np.vstack([
            b.features for b in repairer.transform_stream(
                ArchiveStream(paper_split.archive, batch_size=256),
                rng=9)])
        np.testing.assert_allclose(rebuilt, again)
        # ... and statistically consistent with the one-shot repair (the
        # RNG consumption order differs, so only distributions agree).
        direct = repairer.transform(paper_split.archive, rng=9)
        np.testing.assert_allclose(rebuilt.mean(axis=0),
                                   direct.features.mean(axis=0),
                                   atol=0.15)

    def test_transform_stream_accepts_plain_iterable(self, paper_split):
        repairer = DistributionalRepairer(n_states=25, rng=0)
        repairer.fit(paper_split.research)
        batches = list(repairer.transform_stream(
            [paper_split.archive.take(range(10))]))
        assert len(batches) == 1 and len(batches[0]) == 10

    def test_plan_metadata_via_estimator(self, paper_split):
        repairer = DistributionalRepairer(
            n_states=12, solver="exact", marginal_estimator="linear")
        repairer.fit(paper_split.research)
        assert repairer.plan.metadata["marginal_estimator"] == "linear"
        assert repairer.plan.feature_plan(0, 0).grid.n_states == 12


class TestPreparedFeatureRepair:
    """The pre-validated fast path: validate once, repair many times,
    bit-identical to ``repair_feature_values`` call-for-call."""

    @pytest.mark.parametrize("rounding,output", [
        ("stochastic", "sample"),
        ("nearest", "sample"),
        ("stochastic", "barycentric"),
        ("stochastic", "interpolated"),
        ("nearest", "interpolated"),
    ])
    def test_matches_slow_path_bitwise(self, fitted_feature_plan, rng,
                                       rounding, output):
        values = rng.normal(size=300)
        prepared = prepare_feature_repair(fitted_feature_plan, 0,
                                          rounding=rounding, output=output)
        fast = prepared(values, np.random.default_rng(17))
        slow = repair_feature_values(values, fitted_feature_plan, 0,
                                     rng=np.random.default_rng(17),
                                     rounding=rounding, output=output)
        np.testing.assert_array_equal(fast, slow)

    def test_sparse_plan_matches_slow_path(self, rng):
        # Screened designs produce CSR transports; the prepared sampler
        # must agree with the slow path there too.
        research = paper_simulation_spec().sample(400, rng=rng)
        plan = design_repair(research, 30, solver="screened")
        feature_plan = next(iter(plan.feature_plans.values()))
        values = rng.normal(size=120)
        prepared = prepare_feature_repair(feature_plan, 1)
        np.testing.assert_array_equal(
            prepared(values, np.random.default_rng(4)),
            repair_feature_values(values, feature_plan, 1,
                                  rng=np.random.default_rng(4)))

    def test_merged_apply_equals_separate_applies(self,
                                                  fitted_feature_plan,
                                                  rng):
        # The property micro-batching rests on: applying the kernel to a
        # concatenation of per-request (values, variates) equals the
        # per-request applications — the kernel is element-wise.
        prepared = prepare_feature_repair(fitted_feature_plan, 0,
                                          output="interpolated")
        chunks = [rng.normal(size=n) for n in (40, 25, 60)]
        variates = [prepared.draw(np.random.default_rng(seed), chunk.size)
                    for seed, chunk in enumerate(chunks)]
        separate = [prepared.apply(chunk, draw)
                    for chunk, draw in zip(chunks, variates)]
        merged = prepared.apply(
            np.concatenate(chunks),
            tuple(np.concatenate([draw[j] for draw in variates])
                  for j in range(3)))
        np.testing.assert_array_equal(merged, np.concatenate(separate))

    def test_draw_consumes_stream_like_slow_path(self,
                                                 fitted_feature_plan):
        # Same generator state afterwards => drop-in inside the
        # repair_dataset loop without perturbing later cells.
        n = 64
        prepared = prepare_feature_repair(fitted_feature_plan, 0)
        fast_rng = np.random.default_rng(8)
        slow_rng = np.random.default_rng(8)
        prepared.draw(fast_rng, n)
        repair_feature_values(np.zeros(n), fitted_feature_plan, 0,
                              rng=slow_rng)
        assert fast_rng.random() == slow_rng.random()

    def test_empty_values(self, fitted_feature_plan):
        prepared = prepare_feature_repair(fitted_feature_plan, 0)
        out = prepared(np.array([]), np.random.default_rng(0))
        assert out.size == 0

    def test_nbytes_reports_owned_state(self, fitted_feature_plan):
        sample = prepare_feature_repair(fitted_feature_plan, 0)
        barycentric = prepare_feature_repair(fitted_feature_plan, 0,
                                             output="barycentric")
        assert sample.nbytes > 0
        # The dense row-CDF table dwarfs the expected-target vector.
        assert sample.nbytes > barycentric.nbytes

    def test_validation_happens_at_prepare_time(self,
                                                fitted_feature_plan):
        with pytest.raises(ValidationError, match="rounding"):
            prepare_feature_repair(fitted_feature_plan, 0,
                                   rounding="psychic")
        with pytest.raises(ValidationError, match="output"):
            prepare_feature_repair(fitted_feature_plan, 0,
                                   output="hologram")
        with pytest.raises(ValidationError):
            prepare_feature_repair(fitted_feature_plan, 7)


class TestConditionalCdfCaching:
    """Regression: Algorithm 2's last-column clamp must never write into
    the FeaturePlan's cached conditional-CDF array."""

    def test_repair_does_not_mutate_cached_cdfs(self, fitted_feature_plan,
                                                rng):
        snapshot = fitted_feature_plan.conditional_cdfs(0).copy()
        values = rng.normal(-1.0, 1.0, size=200)
        repair_feature_values(values, fitted_feature_plan, 0, rng=rng)
        repair_feature_values(values, fitted_feature_plan, 0, rng=rng)
        np.testing.assert_array_equal(
            fitted_feature_plan.conditional_cdfs(0), snapshot)

    def test_cdfs_cached_per_s(self, fitted_feature_plan):
        first = fitted_feature_plan.conditional_cdfs(1)
        assert fitted_feature_plan.conditional_cdfs(1) is first

    def test_repeated_repairs_are_distribution_identical(
            self, fitted_feature_plan):
        # Mutated cached CDFs would skew later draws; identical seeds must
        # keep producing identical repairs run after run.
        values = np.linspace(-2.0, 2.0, 100)
        first = repair_feature_values(
            values, fitted_feature_plan, 0,
            rng=np.random.default_rng(7))
        for _ in range(3):
            again = repair_feature_values(
                values, fitted_feature_plan, 0,
                rng=np.random.default_rng(7))
            np.testing.assert_array_equal(first, again)


class TestSolverSpecs:
    def test_screened_solver_end_to_end(self, paper_split, rng):
        repairer = DistributionalRepairer(n_states=24, solver="screened",
                                          rng=rng)
        repaired = repairer.fit_transform(paper_split.research)
        before = conditional_dependence_energy(
            paper_split.research.features, paper_split.research.s,
            paper_split.research.u)
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u)
        assert after.total < before.total

    def test_callable_solver_accepted(self, paper_split, rng):
        from repro.ot import solve

        def my_solver(problem):
            return solve(problem, method="exact")

        repairer = DistributionalRepairer(n_states=16, solver=my_solver,
                                          rng=rng)
        repairer.fit(paper_split.research)
        assert repairer.plan.metadata["solver"] == "my_solver"

    def test_unknown_solver_fails_at_construction(self):
        with pytest.raises(ValidationError, match="unknown solver"):
            DistributionalRepairer(solver="quantum")
