"""Tests for partial repair and damage metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial import PartialRepairer, dampen_repair, repair_damage
from repro.exceptions import ValidationError
from repro.metrics.fairness import conditional_dependence_energy


class TestDampenRepair:
    def test_amount_zero_is_identity(self, paper_split, rng):
        original = paper_split.archive
        fake_repair = original.with_features(original.features + 10.0)
        blended = dampen_repair(original, fake_repair, 0.0)
        np.testing.assert_allclose(blended.features, original.features)

    def test_amount_one_is_full_repair(self, paper_split):
        original = paper_split.archive
        fake_repair = original.with_features(original.features + 10.0)
        blended = dampen_repair(original, fake_repair, 1.0)
        np.testing.assert_allclose(blended.features, fake_repair.features)

    def test_half_blend(self, paper_split):
        original = paper_split.archive
        fake_repair = original.with_features(original.features + 10.0)
        blended = dampen_repair(original, fake_repair, 0.5)
        np.testing.assert_allclose(blended.features,
                                   original.features + 5.0)

    def test_shape_mismatch_rejected(self, paper_split):
        with pytest.raises(ValidationError, match="identical shape"):
            dampen_repair(paper_split.archive, paper_split.research, 0.5)

    def test_invalid_amount_rejected(self, paper_split):
        fake = paper_split.archive.with_features(
            paper_split.archive.features)
        with pytest.raises(ValidationError):
            dampen_repair(paper_split.archive, fake, 1.2)


class TestRepairDamage:
    def test_zero_for_identity(self, paper_split):
        stats = repair_damage(paper_split.archive, paper_split.archive)
        assert stats["total_rms"] == pytest.approx(0.0)
        np.testing.assert_allclose(stats["mean_abs"], 0.0)

    def test_known_displacement(self, paper_split):
        original = paper_split.archive
        shifted = original.with_features(original.features + 2.0)
        stats = repair_damage(original, shifted)
        np.testing.assert_allclose(stats["mean_abs"], 2.0)
        np.testing.assert_allclose(stats["rms"], 2.0)
        np.testing.assert_allclose(stats["max"], 2.0)
        assert stats["total_rms"] == pytest.approx(2.0)

    def test_damage_monotone_in_amount(self, paper_split):
        original = paper_split.archive
        full = original.with_features(original.features + 3.0)
        damages = [repair_damage(original,
                                 dampen_repair(original, full, a)
                                 )["total_rms"]
                   for a in (0.0, 0.3, 0.7, 1.0)]
        assert damages == sorted(damages)


class TestPartialRepairer:
    def test_full_amount_matches_plain_repairer(self, paper_split):
        partial = PartialRepairer(amount=1.0, n_states=25, rng=0)
        partial.fit(paper_split.research)
        repaired = partial.transform(paper_split.archive, rng=4)
        direct = partial.repairer.transform(paper_split.archive, rng=4)
        np.testing.assert_allclose(repaired.features, direct.features)

    def test_zero_amount_is_identity(self, paper_split):
        partial = PartialRepairer(amount=0.0, n_states=25, rng=0)
        repaired = partial.fit_transform(paper_split.research, rng=1)
        np.testing.assert_allclose(repaired.features,
                                   paper_split.research.features)

    def test_trade_off_curve_monotone_damage(self, paper_split):
        partial = PartialRepairer(n_states=25, rng=0)

        def energy_fn(dataset):
            return conditional_dependence_energy(
                dataset.features, dataset.s, dataset.u).total

        records = partial.trade_off_curve(
            paper_split.research, paper_split.archive,
            amounts=(0.0, 0.5, 1.0), energy_fn=energy_fn, rng=2)
        damages = [r["damage"] for r in records]
        assert damages == sorted(damages)
        # Full repair should be fairer than no repair.
        assert records[-1]["energy"] < records[0]["energy"]

    def test_invalid_amount_rejected(self):
        with pytest.raises(ValidationError):
            PartialRepairer(amount=-0.1)
