"""Tests for the end-to-end repair pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import RepairPipeline
from repro.data.streaming import ArchiveStream
from repro.exceptions import NotFittedError, ValidationError


class TestFitAndRepair:
    def test_repair_reduces_energy(self, paper_split):
        pipeline = RepairPipeline(n_states=30, rng=0)
        pipeline.fit(paper_split.research)
        repaired, report = pipeline.repair_and_report(paper_split.archive)
        assert report.after.total < report.before.total
        assert report.reduction_factor > 1.0
        assert report.n_rows == len(paper_split.archive)
        assert report.label_accuracy is None

    def test_not_fitted_raises(self, paper_split):
        pipeline = RepairPipeline()
        with pytest.raises(NotFittedError):
            pipeline.repair(paper_split.archive)

    def test_repair_without_report(self, paper_split):
        pipeline = RepairPipeline(n_states=30, rng=0)
        pipeline.fit(paper_split.research)
        repaired = pipeline.repair(paper_split.archive, rng=1)
        assert len(repaired) == len(paper_split.archive)

    def test_report_str_mentions_reduction(self, paper_split):
        pipeline = RepairPipeline(n_states=30, rng=0)
        pipeline.fit(paper_split.research)
        _, report = pipeline.repair_and_report(paper_split.archive)
        assert "reduction" in str(report)


class TestLabelEstimation:
    def test_estimated_labels_pipeline(self, paper_split):
        pipeline = RepairPipeline(estimate_labels=True, n_states=30, rng=0)
        pipeline.fit(paper_split.research)
        repaired, report = pipeline.repair_and_report(paper_split.archive)
        assert report.label_accuracy is not None
        assert 0.0 <= report.label_accuracy <= 1.0
        # Repair under estimated labels must still reduce dependence as
        # measured against those labels.
        assert report.after.total < report.before.total

    def test_label_model_property(self, paper_split):
        pipeline = RepairPipeline(estimate_labels=True, n_states=20, rng=0)
        with pytest.raises(NotFittedError):
            _ = pipeline.label_model
        pipeline.fit(paper_split.research)
        assert pipeline.label_model.is_fitted

    def test_label_model_unavailable_when_disabled(self, paper_split):
        pipeline = RepairPipeline(estimate_labels=False, n_states=20,
                                  rng=0)
        pipeline.fit(paper_split.research)
        with pytest.raises(NotFittedError):
            _ = pipeline.label_model


class TestStreaming:
    def test_repair_stream(self, paper_split):
        pipeline = RepairPipeline(n_states=25, rng=0)
        pipeline.fit(paper_split.research)
        stream = ArchiveStream(paper_split.archive, batch_size=200)
        batches = list(pipeline.repair_stream(stream))
        assert sum(len(b) for b in batches) == len(paper_split.archive)

    def test_repair_stream_plain_iterable(self, paper_split):
        pipeline = RepairPipeline(n_states=25, rng=0)
        pipeline.fit(paper_split.research)
        out = list(pipeline.repair_stream([paper_split.archive]))
        assert len(out) == 1

    def test_dataset_rejected_as_stream(self, paper_split):
        pipeline = RepairPipeline(n_states=25, rng=0)
        pipeline.fit(paper_split.research)
        with pytest.raises(ValidationError, match="ArchiveStream"):
            list(pipeline.repair_stream(paper_split.archive))

    def test_streaming_with_label_estimation(self, paper_split):
        pipeline = RepairPipeline(estimate_labels=True, n_states=25, rng=0)
        pipeline.fit(paper_split.research)
        stream = ArchiveStream(paper_split.archive, batch_size=300)
        batches = list(pipeline.repair_stream(stream))
        assert sum(len(b) for b in batches) == len(paper_split.archive)
