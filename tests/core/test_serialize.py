"""Tests for repair-plan persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.plan import FeaturePlan, RepairPlan
from repro.core.repair import repair_dataset
from repro.core.serialize import (FORMAT_VERSION, ShardedPlanArchive,
                                  load_plan, save_plan)
from repro.density.grid import InterpolationGrid
from repro.exceptions import DataError, ValidationError
from repro.ot.coupling import TransportPlan


def _feature_plan(nodes, s_values, *, sparse=False, rng=None):
    """A hand-built FeaturePlan whose transports are keyed by ``s_values``."""
    generator = np.random.default_rng(0 if rng is None else rng)
    n = nodes.size
    grid = InterpolationGrid(nodes)
    marginals, transports = {}, {}
    for s in s_values:
        pmf = generator.dirichlet(np.ones(n))
        matrix = np.diag(pmf)  # identity coupling: pmf -> pmf
        plan = TransportPlan(matrix, nodes, nodes, 0.0)
        if sparse:
            plan = plan.to_sparse()
        marginals[s] = pmf
        transports[s] = plan
    barycenter = np.full(n, 1.0 / n)
    return FeaturePlan(grid=grid, marginals=marginals,
                       barycenter=barycenter, transports=transports)


@pytest.fixture
def fitted_plan(paper_split):
    return design_repair(paper_split.research, 20)


class TestRoundTrip:
    def test_structure_preserved(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        assert loaded.n_features == fitted_plan.n_features
        assert loaded.t == fitted_plan.t
        assert set(loaded.feature_plans) == set(fitted_plan.feature_plans)

    def test_arrays_bitwise_equal(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        for key, original in fitted_plan.feature_plans.items():
            restored = loaded.feature_plans[key]
            np.testing.assert_array_equal(restored.grid.nodes,
                                          original.grid.nodes)
            np.testing.assert_array_equal(restored.barycenter,
                                          original.barycenter)
            for s in (0, 1):
                np.testing.assert_array_equal(
                    restored.marginals[s], original.marginals[s])
                np.testing.assert_array_equal(
                    restored.transports[s].matrix,
                    original.transports[s].matrix)
                assert restored.transports[s].cost == pytest.approx(
                    original.transports[s].cost)

    def test_metadata_survives(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        assert loaded.metadata["solver"] == fitted_plan.metadata["solver"]
        assert (loaded.metadata["n_research"]
                == fitted_plan.metadata["n_research"])

    def test_suffix_appended(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan")
        assert written.suffix == ".npz"
        assert written.exists()

    def test_loaded_plan_repairs_identically(self, fitted_plan,
                                             paper_split, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        a = repair_dataset(paper_split.archive, fitted_plan,
                           rng=np.random.default_rng(3))
        b = repair_dataset(paper_split.archive, loaded,
                           rng=np.random.default_rng(3))
        np.testing.assert_allclose(a.features, b.features)


class TestQuantisedArchives:
    """``save_plan(..., dtype="float32")``: half the plan bytes on disk,
    float64 plans after the round trip."""

    def test_float32_round_trip_within_tolerance(self, fitted_plan,
                                                 tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan32.npz",
                            dtype="float32")
        loaded = load_plan(written)
        for key, feature_plan in fitted_plan.feature_plans.items():
            for s, transport in feature_plan.transports.items():
                reloaded = loaded.feature_plans[key].transports[s]
                got = (reloaded.matrix.toarray() if reloaded.is_sparse
                       else reloaded.matrix)
                expected = (transport.matrix.toarray()
                            if transport.is_sparse else transport.matrix)
                assert got.dtype == np.float64  # loaders up-convert
                np.testing.assert_allclose(got, expected, rtol=1e-6,
                                           atol=1e-9)
                # Cost values are never quantised.
                assert reloaded.cost == transport.cost

    def test_float32_sparse_round_trip(self, tmp_path):
        nodes = np.linspace(0.0, 1.0, 40)
        plan = RepairPlan(
            feature_plans={(0, 0): _feature_plan(nodes, (0, 1),
                                                 sparse=True)},
            n_features=1, t=0.5)
        written = save_plan(plan, tmp_path / "sparse32.npz",
                            dtype="float32")
        loaded = load_plan(written)
        transport = loaded.feature_plans[(0, 0)].transports[0]
        assert transport.is_sparse
        assert transport.matrix.data.dtype == np.float64
        np.testing.assert_allclose(
            transport.matrix.toarray(),
            plan.feature_plans[(0, 0)].transports[0].matrix.toarray(),
            rtol=1e-6, atol=1e-9)

    def test_header_records_plan_dtype(self, fitted_plan, tmp_path):
        for dtype, expected in ((None, "float64"),
                                ("float32", "float32"),
                                (np.float32, "float32")):
            written = save_plan(fitted_plan, tmp_path / "dtyped.npz",
                                dtype=dtype)
            with np.load(written) as archive:
                header = json.loads(
                    bytes(archive["__header__"]).decode("utf-8"))
            assert header["plan_dtype"] == expected

    def test_float32_archive_is_smaller(self, fitted_plan, tmp_path):
        full = save_plan(fitted_plan, tmp_path / "full.npz")
        quantised = save_plan(fitted_plan, tmp_path / "quantised.npz",
                              dtype="float32")
        # Plans dominate a dense archive, so ~2x on their bytes shows up
        # as a solidly smaller file.
        assert quantised.stat().st_size < 0.7 * full.stat().st_size

    def test_quantised_plans_still_repair(self, paper_split, tmp_path):
        plan = design_repair(paper_split.research, 20)
        written = save_plan(plan, tmp_path / "repair32.npz",
                            dtype="float32")
        repaired = repair_dataset(paper_split.archive, load_plan(written),
                                  rng=np.random.default_rng(7))
        assert repaired.features.shape == paper_split.archive.features.shape
        assert np.all(np.isfinite(repaired.features))

    def test_unsupported_dtype_rejected(self, fitted_plan, tmp_path):
        with pytest.raises(ValidationError, match="dtype"):
            save_plan(fitted_plan, tmp_path / "bad.npz", dtype="float16")
        with pytest.raises((ValidationError, TypeError)):
            save_plan(fitted_plan, tmp_path / "bad.npz", dtype="bogus")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_plan(tmp_path / "absent.npz")

    def test_not_a_plan_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError, match="missing header"):
            load_plan(path)

    @pytest.mark.parametrize("version", [FORMAT_VERSION + 1, 0, "2"])
    def test_unreadable_version_rejected(self, fitted_plan, tmp_path,
                                         version):
        # Future versions (and junk) are rejected; only the readable
        # range 1..FORMAT_VERSION loads.
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        with np.load(written) as archive:
            arrays = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(arrays["__header__"]).decode("utf-8"))
        header["format_version"] = version
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez(written, **arrays)
        with pytest.raises(DataError, match="version"):
            load_plan(written)

    def test_save_rejects_non_plan(self, tmp_path):
        with pytest.raises(ValidationError, match="RepairPlan"):
            save_plan({"not": "a plan"}, tmp_path / "plan.npz")

    def test_corrupt_archive_rejected(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        # Truncate the file to corrupt it.
        data = written.read_bytes()
        written.write_bytes(data[: len(data) // 3])
        with pytest.raises((DataError, Exception)):
            load_plan(written)


class TestNonBinaryLabels:
    """``s`` encodings other than {0, 1} must round-trip (the v1 loader
    hardcoded ``for s in (0, 1)`` and rejected them as corrupt)."""

    @pytest.mark.parametrize("s_values", [(1, 2), (-1, 1), (0, 1, 2)])
    def test_round_trip(self, tmp_path, s_values):
        nodes = np.linspace(0.0, 1.0, 12)
        plan = RepairPlan(
            feature_plans={(0, 0): _feature_plan(nodes, s_values)},
            n_features=1)
        written = save_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        restored = loaded.feature_plans[(0, 0)]
        assert restored.s_values == tuple(sorted(s_values))
        for s in s_values:
            np.testing.assert_array_equal(
                restored.transports[s].matrix,
                plan.feature_plans[(0, 0)].transports[s].matrix)
            np.testing.assert_array_equal(
                restored.marginals[s],
                plan.feature_plans[(0, 0)].marginals[s])

    def test_bool_labels_round_trip_as_ints(self, tmp_path):
        # Bool-keyed cells must save under the same canonical int keys
        # the header advertises (True == 1 keeps dict lookups working).
        nodes = np.linspace(0.0, 1.0, 8)
        plan = RepairPlan(
            feature_plans={(0, 0): _feature_plan(nodes, (False, True))},
            n_features=1)
        loaded = load_plan(save_plan(plan, tmp_path / "plan.npz"))
        restored = loaded.feature_plans[(0, 0)]
        assert restored.s_values == (0, 1)
        for s in (False, True):
            np.testing.assert_array_equal(
                restored.transports[s].toarray(),
                plan.feature_plans[(0, 0)].transports[s].toarray())

    def test_non_integer_labels_rejected_at_save(self, tmp_path):
        nodes = np.linspace(0.0, 1.0, 8)
        plan = RepairPlan(
            feature_plans={(0, 0): _feature_plan(nodes, ("a", "b"))},
            n_features=1)
        with pytest.raises(ValidationError, match="integer"):
            save_plan(plan, tmp_path / "plan.npz")


class TestSparseStorage:
    def test_sparse_round_trip_preserves_storage_and_values(self,
                                                            tmp_path):
        nodes = np.linspace(-1.0, 1.0, 20)
        original = _feature_plan(nodes, (0, 1), sparse=True)
        plan = RepairPlan(feature_plans={(0, 0): original}, n_features=1)
        written = save_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        for s in (0, 1):
            restored = loaded.feature_plans[(0, 0)].transports[s]
            assert restored.is_sparse
            np.testing.assert_array_equal(
                restored.toarray(), original.transports[s].toarray())
            assert restored.cost == original.transports[s].cost

    def test_mixed_storage_archive(self, tmp_path):
        # One sparse and one dense transport in the same cell.
        nodes = np.linspace(0.0, 1.0, 10)
        generator = np.random.default_rng(7)
        pmf0 = generator.dirichlet(np.ones(10))
        pmf1 = generator.dirichlet(np.ones(10))
        transports = {
            0: TransportPlan(np.diag(pmf0), nodes, nodes, 0.0).to_sparse(),
            1: TransportPlan(np.outer(pmf1, pmf1), nodes, nodes, 0.5),
        }
        cell = FeaturePlan(grid=InterpolationGrid(nodes),
                           marginals={0: pmf0, 1: pmf1},
                           barycenter=np.full(10, 0.1),
                           transports=transports)
        plan = RepairPlan(feature_plans={(0, 0): cell}, n_features=1)
        loaded = load_plan(save_plan(plan, tmp_path / "plan.npz"))
        restored = loaded.feature_plans[(0, 0)]
        assert restored.transports[0].is_sparse
        assert not restored.transports[1].is_sparse
        for s in (0, 1):
            np.testing.assert_array_equal(restored.transports[s].toarray(),
                                          transports[s].toarray())

    def test_screened_design_round_trips_sparse(self, paper_split,
                                                tmp_path):
        plan = design_repair(paper_split.research, 40, solver="screened")
        assert any(fp.transports[s].is_sparse
                   for fp in plan.feature_plans.values()
                   for s in fp.s_values)
        loaded = load_plan(save_plan(plan, tmp_path / "plan.npz"))
        for key, original in plan.feature_plans.items():
            for s in original.s_values:
                restored = loaded.feature_plans[key].transports[s]
                assert restored.is_sparse == \
                    original.transports[s].is_sparse
                np.testing.assert_array_equal(
                    restored.toarray(), original.transports[s].toarray())
        a = repair_dataset(paper_split.archive, plan,
                           rng=np.random.default_rng(3))
        b = repair_dataset(paper_split.archive, loaded,
                           rng=np.random.default_rng(3))
        np.testing.assert_allclose(a.features, b.features)

    def test_compressed_archive_loads_identically(self, fitted_plan,
                                                  tmp_path):
        plain = save_plan(fitted_plan, tmp_path / "plain.npz")
        packed = save_plan(fitted_plan, tmp_path / "packed.npz",
                           compress=True)
        a, b = load_plan(plain), load_plan(packed)
        for key in fitted_plan.feature_plans:
            for s in (0, 1):
                np.testing.assert_array_equal(
                    a.feature_plans[key].transports[s].toarray(),
                    b.feature_plans[key].transports[s].toarray())


class TestV1BackwardCompat:
    """Archives written by the original dense-only v1 code still load."""

    def _write_v1(self, plan, path, *, s_values=(0, 1)):
        """Replicate the v1 writer byte layout: dense plans, compressed
        npz, no s_values header field."""
        header = {
            "format_version": 1,
            "n_features": plan.n_features,
            "t": plan.t,
            "metadata": {str(k): v for k, v in plan.metadata.items()
                         if isinstance(v, (int, float, str, bool))},
            "cells": [[int(u), int(k)]
                      for (u, k) in sorted(plan.feature_plans)],
        }
        arrays = {"__header__": np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)}
        for (u, k), feature_plan in plan.feature_plans.items():
            prefix = f"cell_{u}_{k}"
            arrays[f"{prefix}_nodes"] = feature_plan.grid.nodes
            arrays[f"{prefix}_barycenter"] = feature_plan.barycenter
            for s in s_values:
                arrays[f"{prefix}_marginal_{s}"] = feature_plan.marginals[s]
                arrays[f"{prefix}_plan_{s}"] = \
                    feature_plan.transports[s].toarray()
                arrays[f"{prefix}_cost_{s}"] = np.array(
                    feature_plan.transports[s].cost)
        np.savez_compressed(path, **arrays)
        return path

    def test_v1_archive_loads(self, fitted_plan, tmp_path):
        path = self._write_v1(fitted_plan, tmp_path / "v1.npz")
        loaded = load_plan(path)
        assert set(loaded.feature_plans) == set(fitted_plan.feature_plans)
        for key, original in fitted_plan.feature_plans.items():
            restored = loaded.feature_plans[key]
            for s in (0, 1):
                np.testing.assert_array_equal(
                    restored.transports[s].toarray(),
                    original.transports[s].toarray())

    def test_v1_archive_with_nonbinary_labels_loads(self, tmp_path):
        # The v1 *loader* hardcoded s in (0, 1); the v1 writer happily
        # wrote other labels.  Those archives must now load via key-name
        # recovery instead of raising "corrupt archive".
        nodes = np.linspace(0.0, 1.0, 9)
        cell = _feature_plan(nodes, (1, 2))
        plan = RepairPlan(feature_plans={(0, 0): cell}, n_features=1)
        path = self._write_v1(plan, tmp_path / "v1.npz", s_values=(1, 2))
        loaded = load_plan(path)
        restored = loaded.feature_plans[(0, 0)]
        assert restored.s_values == (1, 2)
        for s in (1, 2):
            np.testing.assert_array_equal(restored.transports[s].toarray(),
                                          cell.transports[s].toarray())

    def test_v1_repairs_identically_after_upgrade(self, fitted_plan,
                                                  paper_split, tmp_path):
        path = self._write_v1(fitted_plan, tmp_path / "v1.npz")
        loaded = load_plan(path)
        a = repair_dataset(paper_split.archive, fitted_plan,
                           rng=np.random.default_rng(11))
        b = repair_dataset(paper_split.archive, loaded,
                           rng=np.random.default_rng(11))
        np.testing.assert_allclose(a.features, b.features)


class TestMappedArchives:
    """``load_plan(..., mmap=True)``: plan bytes served from the page
    cache through zero-copy views instead of eager reads."""

    def test_mmap_load_bitwise_equal(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        mapped = load_plan(written, mmap=True)
        for key, original in fitted_plan.feature_plans.items():
            restored = mapped.feature_plans[key]
            np.testing.assert_array_equal(restored.grid.nodes,
                                          original.grid.nodes)
            for s in (0, 1):
                np.testing.assert_array_equal(
                    restored.transports[s].toarray(),
                    original.transports[s].toarray())

    def test_mmap_arrays_are_views_of_the_map(self, fitted_plan,
                                              tmp_path):
        import mmap as mmap_module

        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        mapped = load_plan(written, mmap=True)
        cell = next(iter(mapped.feature_plans.values()))
        array = cell.grid.nodes
        base = array
        while getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, memoryview)
        assert isinstance(base.obj, mmap_module.mmap)

    def test_mmap_repairs_identically(self, fitted_plan, paper_split,
                                      tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        a = repair_dataset(paper_split.archive, load_plan(written),
                           rng=np.random.default_rng(5))
        b = repair_dataset(paper_split.archive,
                           load_plan(written, mmap=True),
                           rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.features, b.features)

    def test_compressed_archive_falls_back_to_eager_read(self,
                                                         fitted_plan,
                                                         tmp_path):
        # Deflated members cannot be viewed in place; mmap loads must
        # still succeed (eagerly) and match.
        written = save_plan(fitted_plan, tmp_path / "packed.npz",
                            compress=True)
        mapped = load_plan(written, mmap=True)
        plain = load_plan(written)
        for key in fitted_plan.feature_plans:
            for s in (0, 1):
                np.testing.assert_array_equal(
                    mapped.feature_plans[key].transports[s].toarray(),
                    plain.feature_plans[key].transports[s].toarray())


class TestIndexDtypes:
    """Sparse archives store int32 CSR indices whenever the matrices
    fit; loaders hand scipy whichever width was stored."""

    def _sparse_plan(self, n_nodes=40):
        nodes = np.linspace(0.0, 1.0, n_nodes)
        return RepairPlan(
            feature_plans={(0, 0): _feature_plan(nodes, (0, 1),
                                                 sparse=True)},
            n_features=1, t=0.5)

    def test_default_stores_int32(self, tmp_path):
        written = save_plan(self._sparse_plan(), tmp_path / "plan.npz")
        with np.load(written) as archive:
            index_keys = [key for key in archive.files
                          if key.endswith(("_indices", "_indptr"))]
            assert index_keys
            for key in index_keys:
                assert archive[key].dtype == np.int32

    def test_forced_int64_honoured(self, tmp_path):
        written = save_plan(self._sparse_plan(), tmp_path / "plan.npz",
                            index_dtype="int64")
        with np.load(written) as archive:
            for key in archive.files:
                if key.endswith(("_indices", "_indptr")):
                    assert archive[key].dtype == np.int64

    @pytest.mark.parametrize("index_dtype", [None, "int32", "int64"])
    def test_round_trip_identical_either_width(self, tmp_path,
                                               index_dtype):
        plan = self._sparse_plan()
        written = save_plan(plan, tmp_path / "plan.npz",
                            index_dtype=index_dtype)
        loaded = load_plan(written)
        for s in (0, 1):
            np.testing.assert_array_equal(
                loaded.feature_plans[(0, 0)].transports[s].toarray(),
                plan.feature_plans[(0, 0)].transports[s].toarray())

    def test_int32_archive_is_smaller(self, paper_split, tmp_path):
        plan = design_repair(paper_split.research, 40, solver="screened")
        narrow = save_plan(plan, tmp_path / "i32.npz")
        wide = save_plan(plan, tmp_path / "i64.npz", index_dtype="int64")
        assert narrow.stat().st_size < wide.stat().st_size

    def test_unsupported_index_dtype_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="index dtype"):
            save_plan(self._sparse_plan(), tmp_path / "plan.npz",
                      index_dtype="int16")


class TestShardedArchives:
    """``save_plan(..., shard_by=...)``: one design split across several
    archives plus a manifest that loaders read transparently."""

    @pytest.fixture
    def multigroup_plan(self, rng):
        from repro.data.simulated import paper_simulation_spec

        research = paper_simulation_spec().sample(500, rng=rng)
        return design_repair(research, 16)

    @pytest.mark.parametrize("shard_by", ["u", "cell", 3])
    def test_manifest_round_trip(self, multigroup_plan, tmp_path,
                                 shard_by):
        manifest = save_plan(multigroup_plan, tmp_path / "plan.npz",
                             shard_by=shard_by)
        assert manifest.name.endswith(".manifest.json")
        loaded = load_plan(manifest)
        assert set(loaded.feature_plans) == \
            set(multigroup_plan.feature_plans)
        for key, original in multigroup_plan.feature_plans.items():
            for s in (0, 1):
                np.testing.assert_array_equal(
                    loaded.feature_plans[key].transports[s].toarray(),
                    original.transports[s].toarray())

    def test_sharded_repairs_identically(self, multigroup_plan,
                                         paper_split, tmp_path):
        manifest = save_plan(multigroup_plan, tmp_path / "plan.npz",
                             shard_by="u")
        a = repair_dataset(paper_split.archive, multigroup_plan,
                           rng=np.random.default_rng(21))
        b = repair_dataset(paper_split.archive, load_plan(manifest),
                           rng=np.random.default_rng(21))
        np.testing.assert_array_equal(a.features, b.features)

    def test_lazy_archive_bounds_resident_shards(self, multigroup_plan,
                                                 tmp_path):
        manifest = save_plan(multigroup_plan, tmp_path / "plan.npz",
                             shard_by="u")
        archive = ShardedPlanArchive(manifest, max_shards=1)
        u_values = sorted(archive.u_values)
        assert len(u_values) >= 2
        archive.feature_plan(u_values[0], 0)
        archive.feature_plan(u_values[1], 0)
        stats = archive.stats()
        assert stats["resident"] == 1
        assert stats["loads"] == 2
        assert stats["evictions"] == 1

    def test_lazy_cells_match_eager_load(self, multigroup_plan,
                                         tmp_path):
        manifest = save_plan(multigroup_plan, tmp_path / "plan.npz",
                             shard_by="cell")
        archive = ShardedPlanArchive(manifest, mmap=True)
        for (u, k), original in multigroup_plan.feature_plans.items():
            cell = archive.feature_plan(u, k)
            for s in (0, 1):
                np.testing.assert_array_equal(
                    cell.transports[s].toarray(),
                    original.transports[s].toarray())

    def test_bad_shard_mode_rejected(self, multigroup_plan, tmp_path):
        with pytest.raises(ValidationError, match="shard_by"):
            save_plan(multigroup_plan, tmp_path / "plan.npz",
                      shard_by="zodiac")


class TestDiagnosticsPersistence:
    def test_ot_diagnostics_survive_round_trip(self, fitted_plan,
                                               tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        for key, original in fitted_plan.feature_plans.items():
            restored = loaded.feature_plans[key]
            assert set(restored.diagnostics) == {0, 1}
            for s in (0, 1):
                record = restored.diagnostics[s]
                assert record["solver"] == original.diagnostics[s]["solver"]
                assert record["converged"] == \
                    original.diagnostics[s]["converged"]
                assert record["value"] == pytest.approx(
                    original.diagnostics[s]["value"])
