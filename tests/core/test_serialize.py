"""Tests for repair-plan persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.repair import repair_dataset
from repro.core.serialize import FORMAT_VERSION, load_plan, save_plan
from repro.exceptions import DataError, ValidationError


@pytest.fixture
def fitted_plan(paper_split):
    return design_repair(paper_split.research, 20)


class TestRoundTrip:
    def test_structure_preserved(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        assert loaded.n_features == fitted_plan.n_features
        assert loaded.t == fitted_plan.t
        assert set(loaded.feature_plans) == set(fitted_plan.feature_plans)

    def test_arrays_bitwise_equal(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        for key, original in fitted_plan.feature_plans.items():
            restored = loaded.feature_plans[key]
            np.testing.assert_array_equal(restored.grid.nodes,
                                          original.grid.nodes)
            np.testing.assert_array_equal(restored.barycenter,
                                          original.barycenter)
            for s in (0, 1):
                np.testing.assert_array_equal(
                    restored.marginals[s], original.marginals[s])
                np.testing.assert_array_equal(
                    restored.transports[s].matrix,
                    original.transports[s].matrix)
                assert restored.transports[s].cost == pytest.approx(
                    original.transports[s].cost)

    def test_metadata_survives(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        assert loaded.metadata["solver"] == fitted_plan.metadata["solver"]
        assert (loaded.metadata["n_research"]
                == fitted_plan.metadata["n_research"])

    def test_suffix_appended(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan")
        assert written.suffix == ".npz"
        assert written.exists()

    def test_loaded_plan_repairs_identically(self, fitted_plan,
                                             paper_split, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        a = repair_dataset(paper_split.archive, fitted_plan,
                           rng=np.random.default_rng(3))
        b = repair_dataset(paper_split.archive, loaded,
                           rng=np.random.default_rng(3))
        np.testing.assert_allclose(a.features, b.features)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_plan(tmp_path / "absent.npz")

    def test_not_a_plan_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError, match="missing header"):
            load_plan(path)

    def test_wrong_version_rejected(self, fitted_plan, tmp_path,
                                    monkeypatch):
        import repro.core.serialize as serialize
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        monkeypatch.setattr(serialize, "FORMAT_VERSION",
                            FORMAT_VERSION + 1)
        with pytest.raises(DataError, match="version"):
            serialize.load_plan(written)

    def test_save_rejects_non_plan(self, tmp_path):
        with pytest.raises(ValidationError, match="RepairPlan"):
            save_plan({"not": "a plan"}, tmp_path / "plan.npz")

    def test_corrupt_archive_rejected(self, fitted_plan, tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        # Truncate the file to corrupt it.
        data = written.read_bytes()
        written.write_bytes(data[: len(data) // 3])
        with pytest.raises((DataError, Exception)):
            load_plan(written)


class TestDiagnosticsPersistence:
    def test_ot_diagnostics_survive_round_trip(self, fitted_plan,
                                               tmp_path):
        written = save_plan(fitted_plan, tmp_path / "plan.npz")
        loaded = load_plan(written)
        for key, original in fitted_plan.feature_plans.items():
            restored = loaded.feature_plans[key]
            assert set(restored.diagnostics) == {0, 1}
            for s in (0, 1):
                record = restored.diagnostics[s]
                assert record["solver"] == original.diagnostics[s]["solver"]
                assert record["converged"] == \
                    original.diagnostics[s]["converged"]
                assert record["value"] == pytest.approx(
                    original.diagnostics[s]["value"])
