"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.design import design_repair
from repro.core.monge import MongeFeatureMap
from repro.core.serialize import load_plan, save_plan
from repro.data.binning import AttributeBinner
from repro.data.dataset import FairnessDataset


def samples(n: int, lo=-30.0, hi=30.0):
    return arrays(np.float64, n,
                  elements=st.floats(lo, hi, allow_nan=False))


@given(values=samples(40), n_bins=st.integers(2, 8))
@settings(max_examples=50, deadline=None)
def test_binner_outputs_valid_bins(values, n_bins):
    binner = AttributeBinner(n_bins=n_bins).fit(values)
    bins = binner.transform(values)
    assert bins.min() >= 0
    assert bins.max() < binner.n_effective_bins


@given(values=samples(30), probe=samples(10), n_bins=st.integers(2, 6))
@settings(max_examples=50, deadline=None)
def test_binner_is_monotone(values, probe, n_bins):
    # Larger attribute values never land in a smaller bin.
    binner = AttributeBinner(n_bins=n_bins).fit(values)
    ordered = np.sort(probe)
    bins = binner.transform(ordered)
    assert np.all(np.diff(bins) >= 0)


@given(knots_raw=samples(8), images=samples(8), queries=samples(12))
@settings(max_examples=60, deadline=None)
def test_monge_map_is_monotone_function(knots_raw, images, queries):
    knots = np.sort(np.unique(knots_raw))
    if knots.size < 2:
        knots = np.array([0.0, 1.0])
    mapping = MongeFeatureMap(knots=knots,
                              images=images[: knots.size])
    ordered = np.sort(queries)
    out = mapping(ordered)
    assert np.all(np.diff(out) >= -1e-12)
    # Outputs bounded by the image range.
    assert out.min() >= mapping.images.min() - 1e-12
    assert out.max() <= mapping.images.max() + 1e-12


@given(seed=st.integers(0, 2 ** 16), n_states=st.integers(5, 25))
@settings(max_examples=15, deadline=None)
def test_plan_serialization_round_trip(tmp_path_factory, seed, n_states):
    rng = np.random.default_rng(seed)
    n = 80
    features = rng.normal(size=(n, 1)) + rng.integers(0, 2, n)[:, None]
    data = FairnessDataset(features, rng.integers(0, 2, n),
                           rng.integers(0, 2, n))
    # Ensure all four groups are present; otherwise skip the example.
    if len(data.group_sizes()) < 4:
        return
    plan = design_repair(data, n_states)
    target = tmp_path_factory.mktemp("plans") / f"p{seed}.npz"
    loaded = load_plan(save_plan(plan, target))
    for key in plan.feature_plans:
        np.testing.assert_array_equal(
            loaded.feature_plans[key].transports[0].matrix,
            plan.feature_plans[key].transports[0].matrix)
        np.testing.assert_array_equal(
            loaded.feature_plans[key].grid.nodes,
            plan.feature_plans[key].grid.nodes)
