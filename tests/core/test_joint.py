"""Tests for the joint (multivariate) distributional repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.joint import (JointDistributionalRepairer,
                              design_joint_repair)
from repro.core.repair import DistributionalRepairer
from repro.data.simulated import GaussianMixtureSpec, paper_simulation_spec
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.fairness import conditional_dependence_energy
from repro.metrics.multivariate import correlation_gap, sliced_dependence


@pytest.fixture(scope="module")
def copula_split():
    """Unfairness hidden entirely in the correlation structure."""
    rho = 0.8
    spec = GaussianMixtureSpec(
        means={(u, s): [0.0, 0.0] for u in (0, 1) for s in (0, 1)},
        p_u0=0.5, p_s0_given_u={0: 0.4, 1: 0.4},
        covariances={(0, 0): [[1, rho], [rho, 1]],
                     (1, 0): [[1, rho], [rho, 1]],
                     (0, 1): [[1, -rho], [-rho, 1]],
                     (1, 1): [[1, -rho], [-rho, 1]]})
    return spec.sample(4000, rng=0).split(n_research=1500, rng=0)


class TestDesign:
    def test_plan_structure(self, copula_split):
        plan = design_joint_repair(copula_split.research, 8)
        assert plan.n_features == 2
        for u in (0, 1):
            group_plan = plan.group_plan(u)
            assert group_plan.shape == (8, 8)
            assert group_plan.n_states == 64
            assert group_plan.nodes.shape == (64, 2)
            for s in (0, 1):
                assert group_plan.marginals[s].sum() == pytest.approx(1.0)
                rows = group_plan.conditionals[s].sum(axis=1)
                np.testing.assert_allclose(rows, 1.0, atol=1e-9)

    def test_state_budget_enforced(self, copula_split):
        with pytest.raises(ValidationError, match="product grid"):
            design_joint_repair(copula_split.research, 200)

    def test_unknown_group_lookup(self, copula_split):
        plan = design_joint_repair(copula_split.research, 6)
        with pytest.raises(ValidationError, match="no joint plan"):
            plan.group_plan(9)


class TestRepair:
    def test_quenches_copula_dependence(self, copula_split):
        joint = JointDistributionalRepairer(n_states=12, rng=1)
        repaired = joint.fit(copula_split.research).transform(
            copula_split.archive)
        before = sliced_dependence(copula_split.archive.features,
                                   copula_split.archive.s,
                                   copula_split.archive.u, rng=0)
        after = sliced_dependence(repaired.features, repaired.s,
                                  repaired.u, rng=0)
        assert after < before / 2.0

    def test_collapses_correlation_gap(self, copula_split):
        joint = JointDistributionalRepairer(n_states=12, rng=1)
        repaired = joint.fit(copula_split.research).transform(
            copula_split.archive)
        gaps = correlation_gap(repaired.features, repaired.s, repaired.u)
        assert all(v < 0.3 for v in gaps.values())

    def test_per_feature_repair_cannot(self, copula_split):
        # The contrast that motivates the extension: per-feature repair
        # leaves the copula untouched.
        per_feature = DistributionalRepairer(n_states=30, rng=1)
        repaired = per_feature.fit(copula_split.research).transform(
            copula_split.archive)
        gaps = correlation_gap(repaired.features, repaired.s, repaired.u)
        assert all(v > 1.0 for v in gaps.values())

    def test_also_fixes_mean_shift_data(self):
        split = paper_simulation_spec().sample(2500, rng=3).split(
            n_research=900, rng=3)
        joint = JointDistributionalRepairer(n_states=12, rng=1)
        repaired = joint.fit(split.research).transform(split.archive)
        before = conditional_dependence_energy(
            split.archive.features, split.archive.s,
            split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 2.0

    def test_outputs_on_product_grid(self, copula_split):
        joint = JointDistributionalRepairer(n_states=8, rng=1)
        repaired = joint.fit(copula_split.research).transform(
            copula_split.archive)
        plan = joint.plan
        for u in (0, 1):
            group_nodes = plan.group_plan(u).nodes
            mask = repaired.u == u
            rows = repaired.features[mask]
            # Every repaired vector is one of the product-grid points.
            node_set = {tuple(np.round(node, 9)) for node in group_nodes}
            sample = rows[:: max(1, len(rows) // 50)]
            for row in sample:
                assert tuple(np.round(row, 9)) in node_set

    def test_labels_preserved(self, copula_split):
        joint = JointDistributionalRepairer(n_states=8, rng=1)
        repaired = joint.fit_transform(copula_split.research)
        np.testing.assert_array_equal(repaired.s,
                                      copula_split.research.s)
        np.testing.assert_array_equal(repaired.u,
                                      copula_split.research.u)


class TestApiContract:
    def test_not_fitted(self, copula_split):
        joint = JointDistributionalRepairer()
        assert not joint.is_fitted
        with pytest.raises(NotFittedError):
            joint.transform(copula_split.archive)
        with pytest.raises(NotFittedError):
            _ = joint.plan

    def test_feature_mismatch_rejected(self, copula_split, rng):
        from repro.data.dataset import FairnessDataset
        joint = JointDistributionalRepairer(n_states=6, rng=1)
        joint.fit(copula_split.research)
        bad = FairnessDataset(rng.normal(size=(5, 3)),
                              rng.integers(0, 2, 5),
                              rng.integers(0, 2, 5))
        with pytest.raises(ValidationError, match="features"):
            joint.transform(bad)

    def test_missing_class_rejected(self, rng):
        from repro.data.dataset import FairnessDataset
        data = FairnessDataset(rng.normal(size=(20, 2)),
                               np.ones(20, dtype=int),
                               np.zeros(20, dtype=int))
        with pytest.raises(ValidationError, match="lacks"):
            design_joint_repair(data, 6)

    def test_reproducible_with_seed(self, copula_split):
        joint = JointDistributionalRepairer(n_states=8, rng=1)
        joint.fit(copula_split.research)
        a = joint.transform(copula_split.archive, rng=4)
        b = joint.transform(copula_split.archive, rng=4)
        np.testing.assert_allclose(a.features, b.features)
