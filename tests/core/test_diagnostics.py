"""Tests for the stationarity/drift diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.diagnostics import DriftMonitor
from repro.data.dataset import FairnessDataset
from repro.exceptions import ValidationError


@pytest.fixture
def monitor_and_split(rng):
    # A research set large enough that every subgroup's grid solidly
    # covers the stationary archive (tiny subgroups legitimately clip a
    # few boundary points, which is drift-like behaviour by design).
    from repro.data.simulated import paper_simulation_spec
    split = paper_simulation_spec().sample(4000, rng=rng).split(
        n_research=1200, rng=rng)
    plan = design_repair(split.research, 30, padding=0.05)
    return DriftMonitor(plan), split


class TestNoDrift:
    def test_stationary_archive_clean(self, monitor_and_split):
        monitor, split = monitor_and_split
        report = monitor.check(split.archive)
        assert not report.any_drift
        assert report.worst_coverage > 0.95
        assert report.worst_w1_shift < 0.1

    def test_cells_cover_all_groups(self, monitor_and_split):
        monitor, split = monitor_and_split
        report = monitor.check(split.archive)
        keys = {(c.u, c.s, c.k) for c in report.cells}
        expected = {(u, s, k) for u in (0, 1) for s in (0, 1)
                    for k in (0, 1)}
        assert keys == expected

    def test_diagnostics_fields(self, monitor_and_split):
        monitor, split = monitor_and_split
        report = monitor.check(split.archive)
        for cell in report.cells:
            assert 0.0 <= cell.coverage <= 1.0
            assert cell.w1_shift >= 0.0
            assert 0.0 <= cell.tv_shift <= 1.0
            assert cell.n_points > 0


class TestDriftDetection:
    def test_mean_shift_flagged(self, monitor_and_split):
        monitor, split = monitor_and_split
        shifted = split.archive.with_features(
            split.archive.features + 3.0)
        report = monitor.check(shifted)
        assert report.any_drift
        assert report.worst_coverage < 0.9

    def test_scale_drift_flagged(self, monitor_and_split):
        monitor, split = monitor_and_split
        inflated = split.archive.with_features(
            split.archive.features * 4.0)
        report = monitor.check(inflated)
        assert report.any_drift

    def test_subtle_shift_raises_w1(self, monitor_and_split):
        monitor, split = monitor_and_split
        clean = monitor.check(split.archive).worst_w1_shift
        nudged = split.archive.with_features(
            split.archive.features + 0.5)
        drifted = monitor.check(nudged).worst_w1_shift
        assert drifted > clean

    def test_thresholds_configurable(self, paper_split):
        plan = design_repair(paper_split.research, 30)
        paranoid = DriftMonitor(plan, min_coverage=1.0,
                                max_w1_shift=1e-6)
        report = paranoid.check(paper_split.archive)
        # With absurd thresholds, even stationary data is "drifted".
        assert report.any_drift


class TestValidation:
    def test_requires_repair_plan(self):
        with pytest.raises(ValidationError, match="RepairPlan"):
            DriftMonitor("not a plan")

    def test_feature_mismatch_rejected(self, monitor_and_split, rng):
        monitor, _ = monitor_and_split
        bad = FairnessDataset(rng.normal(size=(10, 3)),
                              rng.integers(0, 2, 10),
                              rng.integers(0, 2, 10))
        with pytest.raises(ValidationError, match="features"):
            monitor.check(bad)

    def test_unknown_group_rejected(self, monitor_and_split, rng):
        monitor, _ = monitor_and_split
        alien = FairnessDataset(rng.normal(size=(6, 2)),
                                [0, 1, 0, 1, 0, 1], [3] * 6)
        with pytest.raises(ValidationError, match="no design"):
            monitor.check(alien)

    def test_invalid_thresholds_rejected(self, paper_split):
        plan = design_repair(paper_split.research, 10)
        with pytest.raises(ValidationError):
            DriftMonitor(plan, min_coverage=1.5)
        with pytest.raises(ValidationError, match="max_w1_shift"):
            DriftMonitor(plan, max_w1_shift=-0.1)
