"""Tests for the pluggable execution engine (``repro.core.executor``)
and its threading through Algorithm 1 and the estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.executor import (EXECUTOR_NAMES, ProcessExecutor,
                                 SerialExecutor, ThreadExecutor,
                                 resolve_executor)
from repro.core.repair import DistributionalRepairer
from repro.exceptions import ValidationError


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert resolve_executor().name == "serial"
        assert resolve_executor("auto").name == "serial"
        assert resolve_executor("auto", n_jobs=1).name == "serial"

    def test_auto_picks_threads_for_blas_bound_solvers(self):
        for solver in ("lp", "screened", "multiscale", "sinkhorn"):
            engine = resolve_executor("auto", n_jobs=3, solver=solver)
            assert engine.name == "thread" and engine.n_jobs == 3

    def test_auto_picks_processes_otherwise(self):
        engine = resolve_executor("auto", n_jobs=3, solver="exact")
        assert engine.name == "process" and engine.n_jobs == 3
        assert resolve_executor("auto", n_jobs=2).name == "process"

    def test_named_strategies(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", n_jobs=2),
                          ThreadExecutor)
        assert isinstance(resolve_executor("process", n_jobs=2),
                          ProcessExecutor)
        assert set(EXECUTOR_NAMES) == {"serial", "thread", "process"}

    def test_pool_executors_default_worker_budget(self):
        assert resolve_executor("thread").n_jobs >= 1

    def test_map_capable_object_passes_through(self):
        class Custom:
            def map(self, fn, iterable):
                return [fn(item) for item in iterable]

        custom = Custom()
        assert resolve_executor(custom) is custom

    def test_unknown_specs_rejected(self):
        with pytest.raises(ValidationError, match="unknown executor"):
            resolve_executor("gpu")
        with pytest.raises(ValidationError, match="cannot resolve"):
            resolve_executor(42)
        with pytest.raises(ValidationError, match="n_jobs"):
            resolve_executor("thread", n_jobs=0)


class TestExecutorMap:
    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_map_preserves_order(self, strategy):
        engine = resolve_executor(strategy, n_jobs=2)
        assert engine.map(abs, [-3, 1, -2, 0]) == [3, 1, 2, 0]

    def test_pools_short_circuit_single_tasks(self):
        engine = ThreadExecutor(4)
        assert engine.map(abs, [-1]) == [1]
        assert engine.map(abs, []) == []


class TestDesignExecutorThreading:
    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_every_strategy_matches_serial_design(self, paper_split,
                                                  strategy):
        serial = design_repair(paper_split.research, 16)
        other = design_repair(paper_split.research, 16, n_jobs=2,
                              executor=strategy)
        assert set(other.feature_plans) == set(serial.feature_plans)
        for key, expected in serial.feature_plans.items():
            got = other.feature_plans[key]
            np.testing.assert_array_equal(got.barycenter,
                                          expected.barycenter)
            for s in (0, 1):
                np.testing.assert_array_equal(
                    got.transports[s].toarray(),
                    expected.transports[s].toarray())

    def test_metadata_records_engine_and_batching(self, paper_split):
        plan = design_repair(paper_split.research, 16, n_jobs=2,
                             executor="thread")
        assert plan.metadata["executor"] == "thread"
        assert plan.metadata["n_jobs"] == 2
        # Exact is batch-kernelled: every (u, s, k) solve was vectorised.
        assert plan.metadata["n_batched_solves"] == \
            2 * len(plan.feature_plans)
        for cell_records in plan.solver_diagnostics().values():
            for record in cell_records.values():
                assert record["batched"] is True
                assert record["batch_size"] >= 1

    def test_auto_strategy_recorded(self, paper_split):
        serial_plan = design_repair(paper_split.research, 12)
        assert serial_plan.metadata["executor"] == "serial"
        threaded = design_repair(paper_split.research, 12, n_jobs=2,
                                 solver="lp")
        assert threaded.metadata["executor"] == "thread"

    def test_non_batchable_solver_counts_zero_batched(self, paper_split):
        plan = design_repair(paper_split.research, 12, solver="lp")
        assert plan.metadata["n_batched_solves"] == 0
        for cell_records in plan.solver_diagnostics().values():
            for record in cell_records.values():
                assert "batched" not in record

    def test_estimator_threads_executor(self, paper_split):
        repairer = DistributionalRepairer(n_states=12, executor="serial",
                                          n_jobs=2)
        repairer.fit(paper_split.research)
        assert repairer.plan.metadata["executor"] == "serial"

    def test_invalid_executor_fails_fast(self, paper_split):
        with pytest.raises(ValidationError, match="unknown executor"):
            design_repair(paper_split.research, 12, executor="gpu")
