"""Tests for the geometric-repair baseline (Del Barrio et al.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometric import (GeometricRepairer, geometric_repair_1d,
                                  geometric_repair_multivariate)
from repro.exceptions import ValidationError
from repro.metrics.fairness import conditional_dependence_energy


class TestGeometricRepair1d:
    def test_equal_sizes_midpoint_matching(self):
        xs0 = np.array([0.0, 2.0])
        xs1 = np.array([10.0, 12.0])
        rep0, rep1 = geometric_repair_1d(xs0, xs1, t=0.5)
        # Monotone matching: 0<->10, 2<->12; midpoints 5 and 7.
        np.testing.assert_allclose(rep0, [5.0, 7.0])
        np.testing.assert_allclose(rep1, [5.0, 7.0])

    def test_t_zero_keeps_group0_moves_group1(self):
        xs0 = np.array([0.0, 1.0])
        xs1 = np.array([5.0, 6.0])
        rep0, rep1 = geometric_repair_1d(xs0, xs1, t=0.0)
        np.testing.assert_allclose(rep0, xs0)
        np.testing.assert_allclose(rep1, xs0)  # pushed onto group 0

    def test_t_one_keeps_group1(self):
        xs0 = np.array([0.0, 1.0])
        xs1 = np.array([5.0, 6.0])
        rep0, rep1 = geometric_repair_1d(xs0, xs1, t=1.0)
        np.testing.assert_allclose(rep1, xs1)
        np.testing.assert_allclose(rep0, xs1)

    def test_unequal_sizes_mass_split(self):
        rep0, rep1 = geometric_repair_1d([0.0], [10.0, 20.0], t=0.5)
        # The single source point splits across both targets: conditional
        # mean is 15, midpoint 7.5.
        np.testing.assert_allclose(rep0, [7.5])
        np.testing.assert_allclose(rep1, [5.0, 10.0])

    def test_input_order_preserved(self, rng):
        xs0 = rng.normal(size=9)
        xs1 = rng.normal(3.0, 1.0, size=9)
        rep0, _ = geometric_repair_1d(xs0, xs1)
        order = np.argsort(xs0)
        # Repair is monotone: sorted inputs map to sorted outputs.
        assert np.all(np.diff(rep0[order]) >= -1e-9)

    def test_aligns_distributions(self, rng):
        xs0 = rng.normal(-2.0, 1.0, size=300)
        xs1 = rng.normal(2.0, 1.0, size=500)
        rep0, rep1 = geometric_repair_1d(xs0, xs1)
        assert abs(rep0.mean() - rep1.mean()) < 0.1
        assert abs(np.median(rep0) - np.median(rep1)) < 0.2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            geometric_repair_1d([], [1.0])


class TestGeometricRepairMultivariate:
    def test_translation_recovered(self, rng):
        xs0 = rng.normal(size=(40, 2))
        xs1 = xs0 + np.array([4.0, 0.0])
        rep0, rep1 = geometric_repair_multivariate(xs0, xs1, t=0.5)
        # Both groups should land on the common midpoint cloud.
        np.testing.assert_allclose(rep0.mean(axis=0), rep1.mean(axis=0),
                                   atol=0.15)

    def test_1d_input_promoted(self, rng):
        rep0, rep1 = geometric_repair_multivariate(
            rng.normal(size=10), rng.normal(size=12))
        assert rep0.shape == (10, 1)
        assert rep1.shape == (12, 1)

    def test_matches_1d_variant_cost(self, rng):
        xs0 = rng.normal(-1.0, 1.0, size=15)
        xs1 = rng.normal(1.0, 1.0, size=15)
        mv0, mv1 = geometric_repair_multivariate(xs0, xs1)
        d0, d1 = geometric_repair_1d(xs0, xs1)
        np.testing.assert_allclose(np.sort(mv0.ravel()), np.sort(d0),
                                   atol=1e-6)
        np.testing.assert_allclose(np.sort(mv1.ravel()), np.sort(d1),
                                   atol=1e-6)


class TestGeometricRepairer:
    def test_quenches_dependence_per_group(self, paper_split):
        repaired = GeometricRepairer().fit_transform(paper_split.research)
        before = conditional_dependence_energy(
            paper_split.research.features, paper_split.research.s,
            paper_split.research.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before / 5.0

    def test_labels_preserved(self, paper_split):
        repaired = GeometricRepairer().fit_transform(paper_split.research)
        np.testing.assert_array_equal(repaired.s, paper_split.research.s)
        np.testing.assert_array_equal(repaired.u, paper_split.research.u)

    def test_partial_t(self, paper_split):
        full = GeometricRepairer(t=0.5).fit_transform(paper_split.research)
        partial = GeometricRepairer(t=0.1).fit_transform(
            paper_split.research)
        # t = 0.1 pulls everything close to group 0's geometry; both are
        # valid repairs but differ.
        assert not np.allclose(full.features, partial.features)

    def test_multivariate_mode(self, rng):
        from repro.data.simulated import paper_simulation_spec
        data = paper_simulation_spec().sample(120, rng=rng)
        repaired = GeometricRepairer(mode="multivariate").fit_transform(
            data)
        report = conditional_dependence_energy(repaired.features,
                                               repaired.s, repaired.u)
        before = conditional_dependence_energy(data.features, data.s,
                                               data.u)
        assert report.total < before.total

    def test_missing_class_rejected(self, rng):
        from repro.data.dataset import FairnessDataset
        data = FairnessDataset(rng.normal(size=(10, 1)),
                               np.zeros(10, dtype=int),
                               np.zeros(10, dtype=int))
        with pytest.raises(ValidationError, match="lacks"):
            GeometricRepairer().fit_transform(data)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError, match="mode"):
            GeometricRepairer(mode="hyperbolic")

    def test_invalid_t_rejected(self):
        with pytest.raises(ValidationError):
            GeometricRepairer(t=1.5)
