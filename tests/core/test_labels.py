"""Tests for s|u label estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labels import (GaussianClassConditional, SubgroupLabelModel,
                               em_refine)
from repro.data.simulated import paper_simulation_spec
from repro.exceptions import NotFittedError, ValidationError


class TestGaussianClassConditional:
    def test_fit_recovers_moments(self, rng):
        xs = rng.multivariate_normal([1.0, -2.0],
                                     [[2.0, 0.5], [0.5, 1.0]], size=5000)
        component = GaussianClassConditional.fit(xs)
        np.testing.assert_allclose(component.mean, [1.0, -2.0], atol=0.1)
        np.testing.assert_allclose(component.cov,
                                   [[2.0, 0.5], [0.5, 1.0]], atol=0.15)

    def test_log_pdf_matches_scipy(self, rng):
        from scipy.stats import multivariate_normal
        mean = np.array([0.5, -0.5])
        cov = np.array([[1.5, 0.3], [0.3, 0.8]])
        component = GaussianClassConditional(mean, cov)
        xs = rng.normal(size=(20, 2))
        expected = multivariate_normal(mean, component.cov).logpdf(xs)
        np.testing.assert_allclose(component.log_pdf(xs), expected,
                                   rtol=1e-8)

    def test_singular_covariance_ridged(self):
        # Perfectly correlated features would be singular without ridge.
        component = GaussianClassConditional([0.0, 0.0],
                                             [[1.0, 1.0], [1.0, 1.0]])
        assert np.isfinite(component.log_pdf([[0.0, 0.0]])).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="covariance"):
            GaussianClassConditional([0.0, 0.0], np.eye(3))


class TestSubgroupLabelModel:
    @pytest.fixture
    def split(self, rng):
        spec = paper_simulation_spec()
        return spec.sample(3000, rng=rng).split(n_research=600, rng=rng)

    def test_accuracy_beats_chance(self, split):
        model = SubgroupLabelModel().fit(split.research)
        accuracy = model.accuracy(split.archive)
        # Components are well separated for s=0 vs s=1 within u groups.
        assert accuracy > 0.6

    def test_posterior_bounds(self, split):
        model = SubgroupLabelModel().fit(split.research)
        proba = model.predict_proba(split.archive.features,
                                    split.archive.u)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_predict_thresholds_posterior(self, split):
        model = SubgroupLabelModel().fit(split.research)
        proba = model.predict_proba(split.archive.features,
                                    split.archive.u)
        labels = model.predict(split.archive.features, split.archive.u)
        np.testing.assert_array_equal(labels, (proba >= 0.5).astype(int))

    def test_label_archive_replaces_s(self, split):
        model = SubgroupLabelModel().fit(split.research)
        relabelled = model.label_archive(split.archive)
        assert len(relabelled) == len(split.archive)
        np.testing.assert_array_equal(relabelled.u, split.archive.u)
        predicted = model.predict(split.archive.features, split.archive.u)
        np.testing.assert_array_equal(relabelled.s, predicted)

    def test_not_fitted_rejected(self, split):
        model = SubgroupLabelModel()
        with pytest.raises(NotFittedError):
            model.predict(split.archive.features, split.archive.u)

    def test_unknown_group_rejected(self, split, rng):
        model = SubgroupLabelModel().fit(split.research)
        with pytest.raises(ValidationError, match="not fitted for group"):
            model.predict(rng.normal(size=(3, 2)), [7, 7, 7])

    def test_tiny_subgroup_rejected(self, rng):
        from repro.data.dataset import FairnessDataset
        x = rng.normal(size=(5, 1))
        data = FairnessDataset(x, [0, 1, 1, 1, 1], [0, 0, 0, 0, 0])
        with pytest.raises(ValidationError, match=">= 2"):
            SubgroupLabelModel().fit(data)


class TestEmRefine:
    def test_refinement_does_not_collapse(self, rng):
        spec = paper_simulation_spec()
        split = spec.sample(4000, rng=rng).split(n_research=400, rng=rng)
        model = SubgroupLabelModel().fit(split.research)
        refined = em_refine(model, split.archive, n_iter=15)
        base_acc = model.accuracy(split.archive)
        refined_acc = refined.accuracy(split.archive)
        # EM must stay in the same basin (warm start) and not fall apart.
        assert refined_acc > base_acc - 0.1

    def test_requires_fitted_model(self, rng):
        spec = paper_simulation_spec()
        archive = spec.sample(100, rng=rng)
        with pytest.raises(NotFittedError):
            em_refine(SubgroupLabelModel(), archive)

    def test_returns_new_model(self, rng):
        spec = paper_simulation_spec()
        split = spec.sample(1000, rng=rng).split(n_research=300, rng=rng)
        model = SubgroupLabelModel().fit(split.research)
        refined = em_refine(model, split.archive, n_iter=3)
        assert refined is not model
        assert refined.is_fitted
