"""Tests for Algorithm 1 (repair-plan design)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_feature_plan, design_repair
from repro.exceptions import ValidationError
from repro.ot.coupling import marginal_residual
from repro.ot.onedim import wasserstein_1d


@pytest.fixture
def samples_by_s(rng):
    return {0: rng.normal(-1.0, 1.0, size=70),
            1: rng.normal(1.0, 1.0, size=90)}


class TestDesignFeaturePlan:
    def test_grid_spans_combined_range(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 30)
        combined = np.concatenate([samples_by_s[0], samples_by_s[1]])
        assert plan.grid.low == pytest.approx(combined.min())
        assert plan.grid.high == pytest.approx(combined.max())

    def test_transports_couple_marginal_to_barycenter(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 30)
        for s in (0, 1):
            residual = marginal_residual(plan.transports[s].matrix,
                                         plan.marginals[s],
                                         plan.barycenter)
            assert residual < 1e-8

    def test_barycenter_is_w2_midpoint(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 60)
        nodes = plan.grid.nodes
        d0 = wasserstein_1d(nodes, plan.marginals[0], nodes,
                            plan.barycenter, p=2)
        d1 = wasserstein_1d(nodes, plan.marginals[1], nodes,
                            plan.barycenter, p=2)
        assert d0 == pytest.approx(d1, rel=0.1, abs=0.02)

    def test_t_zero_target_is_mu0(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 60, t=0.0)
        nodes = plan.grid.nodes
        gap = wasserstein_1d(nodes, plan.barycenter, nodes,
                             plan.marginals[0], p=2)
        assert gap < 0.1

    def test_t_one_target_is_mu1(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 60, t=1.0)
        nodes = plan.grid.nodes
        gap = wasserstein_1d(nodes, plan.barycenter, nodes,
                             plan.marginals[1], p=2)
        assert gap < 0.1

    def test_solvers_agree_on_plan_cost(self, samples_by_s):
        exact = design_feature_plan(samples_by_s, 15, solver="exact")
        simplex = design_feature_plan(samples_by_s, 15, solver="simplex")
        for s in (0, 1):
            assert exact.transports[s].cost == pytest.approx(
                simplex.transports[s].cost, rel=1e-6, abs=1e-10)

    def test_sinkhorn_solver_near_exact(self, samples_by_s):
        exact = design_feature_plan(samples_by_s, 15, solver="exact")
        entropic = design_feature_plan(samples_by_s, 15,
                                       solver="sinkhorn", epsilon=1e-3)
        for s in (0, 1):
            assert entropic.transports[s].cost >= \
                exact.transports[s].cost - 1e-9
            assert entropic.transports[s].cost == pytest.approx(
                exact.transports[s].cost, rel=0.25, abs=0.01)

    def test_linear_estimator_mass_matches_empirical(self, rng):
        samples = {0: np.full(50, 3.0), 1: rng.normal(3.0, 1.0, size=50)}
        plan = design_feature_plan(samples, 20,
                                   marginal_estimator="linear")
        # All s=0 mass must sit on the two nodes bracketing the atom.
        idx, tau = plan.grid.locate(np.array([3.0]))
        mass = (plan.marginals[0][idx[0]]
                + plan.marginals[0][idx[0] + 1])
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_padding_widens_grid(self, samples_by_s):
        plain = design_feature_plan(samples_by_s, 20)
        padded = design_feature_plan(samples_by_s, 20, padding=0.1)
        assert padded.grid.low < plain.grid.low
        assert padded.grid.high > plain.grid.high

    def test_missing_class_rejected(self, rng):
        with pytest.raises(ValidationError, match="both s=0 and s=1"):
            design_feature_plan({0: rng.normal(size=10)}, 10)

    def test_empty_subgroup_rejected(self, rng):
        with pytest.raises(ValidationError, match="no research points"):
            design_feature_plan({0: np.array([]),
                                 1: rng.normal(size=10)}, 10)

    def test_single_point_subgroup_allowed(self, rng):
        # Figure 3's smallest research sizes leave 1-2 points in the
        # rarest subgroup; the design must degrade gracefully, not fail.
        plan = design_feature_plan({0: [1.0], 1: rng.normal(size=10)}, 10)
        assert plan.marginals[0].sum() == pytest.approx(1.0)

    def test_unknown_solver_rejected(self, samples_by_s):
        with pytest.raises(ValidationError, match="unknown solver"):
            design_feature_plan(samples_by_s, 10, solver="quantum")

    def test_unknown_estimator_rejected(self, samples_by_s):
        with pytest.raises(ValidationError, match="marginal_estimator"):
            design_feature_plan(samples_by_s, 10,
                                marginal_estimator="spline")


class TestDesignRepair:
    def test_covers_all_cells(self, paper_split):
        plan = design_repair(paper_split.research, 25)
        assert plan.n_features == 2
        assert set(plan.feature_plans) == {(u, k) for u in (0, 1)
                                           for k in (0, 1)}
        assert plan.t == 0.5

    def test_metadata_recorded(self, paper_split):
        plan = design_repair(paper_split.research, 25, solver="exact")
        assert plan.metadata["solver"] == "exact"
        assert plan.metadata["n_research"] == len(paper_split.research)
        assert plan.metadata["marginal_estimator"] == "kde"
        assert plan.metadata["backend"] == "numpy"  # the resolved default

    def test_backend_threads_through_and_is_recorded(self, paper_split):
        default = design_repair(paper_split.research, 20)
        explicit = design_repair(paper_split.research, 20,
                                 backend="numpy")
        assert explicit.metadata["backend"] == "numpy"
        for key, feature_plan in default.feature_plans.items():
            for s, transport in feature_plan.transports.items():
                np.testing.assert_array_equal(
                    explicit.feature_plans[key].transports[s].matrix,
                    transport.matrix)

    def test_unknown_backend_fails_before_designing(self, paper_split):
        with pytest.raises(ValidationError, match="backend"):
            design_repair(paper_split.research, 20, backend="bogus")

    def test_backend_metadata_honest_for_unaware_solvers(self,
                                                        paper_split):
        """A solver that drops the backend knob must not record the
        requested backend as compute provenance."""
        plan = design_repair(paper_split.research, 20, solver="lp",
                             backend="numpy")
        assert plan.metadata["backend"] == "numpy"
        from repro.core.backend import register_array_backend
        from repro.core.backend import NumpyBackend

        class Probe(NumpyBackend):
            name = "test-probe-backend"

        register_array_backend("test-probe-backend", Probe,
                               overwrite=True)
        plan = design_repair(paper_split.research, 20, solver="lp",
                             backend="test-probe-backend")
        # lp never saw (or ran on) the probe backend.
        assert plan.metadata["backend"] == "numpy"
        aware = design_repair(paper_split.research, 20, solver="exact",
                              backend="test-probe-backend")
        assert aware.metadata["backend"] == "test-probe-backend"

    def test_per_cell_resolutions(self, paper_split):
        states = {(u, k): 10 + 5 * u + k for u in (0, 1) for k in (0, 1)}
        plan = design_repair(paper_split.research, states)
        for (u, k), n_q in states.items():
            assert plan.feature_plan(u, k).grid.n_states == n_q

    def test_missing_cell_resolution_rejected(self, paper_split):
        with pytest.raises(ValidationError, match="missing cell"):
            design_repair(paper_split.research, {(0, 0): 10})

    def test_group_without_both_classes_rejected(self, rng):
        from repro.data.dataset import FairnessDataset
        x = rng.normal(size=(20, 1))
        s = np.zeros(20, dtype=int)
        s[:10] = 1
        u = np.zeros(20, dtype=int)
        u[:10] = 1  # u=1 rows are all s=1; u=0 rows all s=0
        data = FairnessDataset(x, s, u)
        with pytest.raises(ValidationError, match="lacks research data"):
            design_repair(data, 10)


class TestRegistryThreading:
    """Algorithm 1 resolves its solver through the unified OT registry."""

    def test_registered_name_usable(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 15, solver="lp")
        for s in (0, 1):
            assert plan.diagnostics[s]["solver"] == "lp"

    def test_solver_instance_usable(self, samples_by_s):
        from repro.ot import resolve_solver
        plan = design_feature_plan(samples_by_s, 15,
                                   solver=resolve_solver("simplex"))
        assert plan.diagnostics[0]["solver"] == "simplex"

    def test_screened_matches_exact_plan_cost(self, samples_by_s):
        exact = design_feature_plan(samples_by_s, 15, solver="exact")
        screened = design_feature_plan(samples_by_s, 15, solver="screened")
        for s in (0, 1):
            assert screened.transports[s].cost == pytest.approx(
                exact.transports[s].cost, rel=1e-6, abs=1e-12)

    def test_diagnostics_recorded(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 15, solver="exact")
        for s in (0, 1):
            record = plan.diagnostics[s]
            assert record["converged"] is True
            assert record["residual"] <= 1e-8
            assert record["wall_time"] >= 0.0

    def test_design_repair_aggregates_diagnostics(self, paper_split):
        plan = design_repair(paper_split.research, 20, solver="exact")
        assert plan.metadata["ot_wall_time"] >= 0.0
        assert plan.metadata["n_unconverged"] == 0
        diagnostics = plan.solver_diagnostics()
        assert set(diagnostics) == set(plan.feature_plans)
        for cell_records in diagnostics.values():
            assert set(cell_records) == {0, 1}


def _strip_wall_time(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "wall_time"}


class TestParallelDesign:
    """`n_jobs` fans the independent (u, k) cells across processes; the
    result must be indistinguishable from the serial loop."""

    @pytest.mark.parametrize("solver", ["exact", "screened"])
    def test_parallel_matches_serial_exactly(self, paper_split, solver):
        serial = design_repair(paper_split.research, 20, solver=solver)
        parallel = design_repair(paper_split.research, 20, solver=solver,
                                 n_jobs=2)
        assert set(parallel.feature_plans) == set(serial.feature_plans)
        for key, expected in serial.feature_plans.items():
            got = parallel.feature_plans[key]
            np.testing.assert_array_equal(got.grid.nodes,
                                          expected.grid.nodes)
            np.testing.assert_array_equal(got.barycenter,
                                          expected.barycenter)
            for s in (0, 1):
                np.testing.assert_array_equal(got.marginals[s],
                                              expected.marginals[s])
                assert got.transports[s].is_sparse == \
                    expected.transports[s].is_sparse
                np.testing.assert_array_equal(
                    got.transports[s].toarray(),
                    expected.transports[s].toarray())
                # Per-cell diagnostics survive the fan-out; only the
                # wall clock is nondeterministic.
                assert _strip_wall_time(got.diagnostics[s]) == \
                    _strip_wall_time(expected.diagnostics[s])

    def test_parallel_repairs_identically(self, paper_split):
        serial = design_repair(paper_split.research, 15)
        parallel = design_repair(paper_split.research, 15, n_jobs=2)
        from repro.core.repair import repair_dataset
        a = repair_dataset(paper_split.archive, serial,
                           rng=np.random.default_rng(5))
        b = repair_dataset(paper_split.archive, parallel,
                           rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.features, b.features)

    def test_n_jobs_recorded_in_metadata(self, paper_split):
        plan = design_repair(paper_split.research, 15, n_jobs=2)
        assert plan.metadata["n_jobs"] == 2
        assert design_repair(paper_split.research,
                             15).metadata["n_jobs"] == 1

    def test_invalid_n_jobs_rejected(self, paper_split):
        with pytest.raises(ValidationError, match="n_jobs"):
            design_repair(paper_split.research, 15, n_jobs=0)


class TestSparsePlanStorage:
    def test_auto_sparsifies_low_density_plans(self, samples_by_s):
        plan = design_feature_plan(samples_by_s, 40, sparse_plans="auto")
        for s in (0, 1):
            # The exact monotone plan has O(n_Q) support.
            assert plan.transports[s].is_sparse

    def test_forced_sparse_and_default_dense(self, samples_by_s):
        default = design_feature_plan(samples_by_s, 20)
        forced = design_feature_plan(samples_by_s, 20, sparse_plans=True)
        for s in (0, 1):
            assert not default.transports[s].is_sparse
            assert forced.transports[s].is_sparse
            np.testing.assert_array_equal(forced.transports[s].toarray(),
                                          default.transports[s].matrix)

    def test_sparse_design_repairs_like_dense(self, paper_split):
        from repro.core.repair import repair_dataset
        dense = design_repair(paper_split.research, 20)
        sparse = design_repair(paper_split.research, 20,
                               sparse_plans=True)
        a = repair_dataset(paper_split.archive, dense,
                           rng=np.random.default_rng(9))
        b = repair_dataset(paper_split.archive, sparse,
                           rng=np.random.default_rng(9))
        np.testing.assert_allclose(a.features, b.features)

    def test_storage_counted_in_metadata(self, paper_split):
        plan = design_repair(paper_split.research, 15, sparse_plans=True)
        assert plan.metadata["sparse_plans"] is True
        assert plan.metadata["n_sparse_transports"] == \
            2 * len(plan.feature_plans)

    def test_invalid_mode_rejected(self, samples_by_s):
        with pytest.raises(ValidationError, match="sparse_plans"):
            design_feature_plan(samples_by_s, 15, sparse_plans="always")
        with pytest.raises(ValidationError, match="sparse_plans"):
            design_feature_plan(samples_by_s, 15, sparse_plans=2)

    def test_bool_like_modes_canonicalised(self, samples_by_s):
        # 1 / np.True_ must behave exactly like True, not silently no-op.
        for spec in (1, np.True_):
            plan = design_feature_plan(samples_by_s, 15, sparse_plans=spec)
            assert all(plan.transports[s].is_sparse for s in (0, 1))
        plan = design_feature_plan(samples_by_s, 15, sparse_plans=np.False_)
        assert not any(plan.transports[s].is_sparse for s in (0, 1))
