"""Conformance suite for the pluggable array-API compute backends.

Two layers of guarantees:

* **Op conformance** — every available backend's operations agree with
  the numpy reference on the exact op set the OT kernels use
  (``cumsum``, stable ``argsort``, ``take_along_axis``,
  ``searchsorted``, the ``einsum`` contraction patterns, ``logsumexp``,
  reductions, scalar-operand elementwise ops, ...).
* **Kernel conformance** — the refactored kernels themselves
  (``batched_north_west_corner``, serial and batched Sinkhorn, the
  ``exact`` solver) produce backend-independent results: bit-identical
  on numpy, within tolerance elsewhere.

The ``numpy`` backend always runs.  ``array_api_strict`` (the CI
conformance namespace), ``torch`` and ``cupy`` are parametrised in and
**skip** unless importable — CI installs ``array-api-strict`` (and
attempts torch-cpu) so the whole suite exercises at least one
non-numpy namespace on every PR.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import logsumexp as scipy_logsumexp

from repro.core.backend import (ArrayBackend, BACKEND_NAMES, NumpyBackend,
                                available_backends, get_backend,
                                register_array_backend)
from repro.exceptions import ValidationError
from repro.ot import OTProblem, solve
from repro.ot.onedim import batched_north_west_corner, north_west_corner
from repro.ot.sinkhorn import (batched_sinkhorn, batched_sinkhorn_log,
                               sinkhorn, sinkhorn_log)


def backend_params():
    """One param per registered backend; unavailable ones skip."""
    params = []
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
            marks = ()
        except ValidationError:
            marks = (pytest.mark.skip(
                reason=f"backend {name!r} not installed"),)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


@pytest.fixture(params=backend_params())
def nx(request) -> ArrayBackend:
    return get_backend(request.param)


class TestRegistry:
    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()

    def test_default_and_auto_resolve_to_numpy(self):
        assert get_backend().name == "numpy"
        assert get_backend("auto").name == "numpy"
        assert get_backend(None) is get_backend("numpy")  # singleton

    def test_instance_passthrough(self):
        instance = NumpyBackend()
        assert get_backend(instance) is instance

    def test_unknown_name_fails_with_choices(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_unresolvable_spec_type_rejected(self):
        with pytest.raises(ValidationError, match="cannot resolve"):
            get_backend(42)

    def test_register_array_backend_plugin(self):
        class Plugin(NumpyBackend):
            name = "test-plugin-backend"

        register_array_backend("test-plugin-backend", Plugin,
                               overwrite=True)
        assert get_backend("test-plugin-backend").name == \
            "test-plugin-backend"
        assert "test-plugin-backend" in available_backends()
        with pytest.raises(ValidationError, match="already registered"):
            register_array_backend("test-plugin-backend", Plugin)

    def test_unavailable_factory_reports_import_error(self):
        def factory():
            raise ImportError("no such device library")

        register_array_backend("test-unavailable-backend", factory,
                               overwrite=True)
        with pytest.raises(ValidationError, match="not available"):
            get_backend("test-unavailable-backend")
        assert "test-unavailable-backend" not in available_backends()


class TestOpConformance:
    """Each backend op agrees with the numpy reference."""

    def test_asarray_to_numpy_round_trip(self, nx, rng):
        values = rng.normal(size=(3, 4))
        arr = nx.asarray(values, dtype=nx.float64)
        back = nx.to_numpy(arr)
        np.testing.assert_array_equal(back, values)
        assert back.dtype == np.float64

    def test_astype_and_dtypes(self, nx):
        arr = nx.asarray([1.5, 2.5], dtype=nx.float64)
        ints = nx.astype(arr, nx.int64)
        np.testing.assert_array_equal(nx.to_numpy(ints), [1, 2])
        flags = nx.asarray(np.array([True, False]), dtype=nx.bool)
        np.testing.assert_array_equal(nx.to_numpy(flags), [True, False])

    def test_creation(self, nx):
        np.testing.assert_array_equal(
            nx.to_numpy(nx.zeros((2, 3), dtype=nx.float64)),
            np.zeros((2, 3)))
        np.testing.assert_array_equal(
            nx.to_numpy(nx.ones((4,), dtype=nx.float64)), np.ones(4))
        np.testing.assert_array_equal(
            nx.to_numpy(nx.arange(2, 7, dtype=nx.int64)), np.arange(2, 7))

    def test_structure_ops(self, nx, rng):
        a, b = rng.normal(size=(2, 5))
        stacked = nx.stack([nx.asarray(a, dtype=nx.float64),
                            nx.asarray(b, dtype=nx.float64)])
        np.testing.assert_array_equal(nx.to_numpy(stacked),
                                      np.stack([a, b]))
        joined = nx.concat([stacked, stacked], axis=1)
        assert tuple(joined.shape) == (2, 10)
        reshaped = nx.reshape(joined, (4, 5))
        np.testing.assert_array_equal(
            nx.to_numpy(reshaped),
            np.concatenate([np.stack([a, b])] * 2, axis=1).reshape(4, 5))

    def test_cumsum(self, nx, rng):
        values = rng.normal(size=(3, 6))
        got = nx.to_numpy(nx.cumsum(nx.asarray(values, dtype=nx.float64),
                                    axis=1))
        np.testing.assert_allclose(got, np.cumsum(values, axis=1),
                                   atol=1e-15)

    def test_argsort_is_stable(self, nx):
        values = np.array([[2.0, 1.0, 2.0, 1.0, 0.5]])
        got = nx.to_numpy(nx.argsort(nx.asarray(values,
                                                dtype=nx.float64),
                                     axis=1))
        np.testing.assert_array_equal(
            got, np.argsort(values, axis=1, kind="stable"))

    def test_take_and_take_along_axis(self, nx, rng):
        values = rng.normal(size=(4, 6))
        arr = nx.asarray(values, dtype=nx.float64)
        order = nx.argsort(arr, axis=1)
        np.testing.assert_array_equal(
            nx.to_numpy(nx.take_along_axis(arr, order, axis=1)),
            np.sort(values, axis=1))
        picked = nx.take(arr, nx.asarray(np.array([2, 0]),
                                         dtype=nx.int64), axis=0)
        np.testing.assert_array_equal(nx.to_numpy(picked),
                                      values[[2, 0]])

    def test_searchsorted(self, nx):
        haystack = nx.asarray(np.array([0.0, 1.0, 1.0, 3.0]),
                              dtype=nx.float64)
        needles = nx.asarray(np.array([0.5, 1.0, 4.0]), dtype=nx.float64)
        for side in ("left", "right"):
            got = nx.to_numpy(nx.searchsorted(haystack, needles,
                                              side=side))
            np.testing.assert_array_equal(
                got, np.searchsorted([0.0, 1.0, 1.0, 3.0],
                                     [0.5, 1.0, 4.0], side=side))

    @pytest.mark.parametrize("pattern,shapes", [
        ("bij,bj->bi", ((3, 4, 5), (3, 5))),
        ("bij,bi->bj", ((3, 4, 5), (3, 4))),
        ("bt,bt->b", ((3, 7), (3, 7))),
        ("ij,j->i", ((4, 5), (5,))),
        ("ij,i->j", ((4, 5), (4,))),
    ])
    def test_einsum_patterns(self, nx, rng, pattern, shapes):
        operands = [rng.normal(size=shape) for shape in shapes]
        got = nx.to_numpy(nx.einsum(
            pattern, *[nx.asarray(op, dtype=nx.float64)
                       for op in operands]))
        np.testing.assert_allclose(got, np.einsum(pattern, *operands),
                                   atol=1e-12)

    def test_matmul_and_transpose(self, nx, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5,))
        np.testing.assert_allclose(
            nx.to_numpy(nx.matmul(nx.asarray(a, dtype=nx.float64),
                                  nx.asarray(b, dtype=nx.float64))),
            a @ b, atol=1e-12)
        np.testing.assert_array_equal(
            nx.to_numpy(nx.transpose(nx.asarray(a, dtype=nx.float64))),
            a.T)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_logsumexp(self, nx, rng, axis):
        values = rng.normal(size=(3, 4, 5)) * 10.0
        got = nx.to_numpy(nx.logsumexp(nx.asarray(values,
                                                  dtype=nx.float64),
                                       axis=axis))
        np.testing.assert_allclose(got, scipy_logsumexp(values, axis=axis),
                                   atol=1e-12)

    def test_elementwise_with_scalar_operands(self, nx, rng):
        values = rng.normal(size=(2, 5))
        arr = nx.asarray(values, dtype=nx.float64)
        np.testing.assert_allclose(
            nx.to_numpy(nx.maximum(arr, 0.1)),
            np.maximum(values, 0.1), atol=1e-15)
        np.testing.assert_allclose(
            nx.to_numpy(nx.minimum(arr, 0.1)),
            np.minimum(values, 0.1), atol=1e-15)
        np.testing.assert_allclose(
            nx.to_numpy(nx.power(nx.abs(arr), 2.0)),
            np.abs(values) ** 2.0, atol=1e-12)
        np.testing.assert_allclose(nx.to_numpy(nx.exp(arr)),
                                   np.exp(values), atol=1e-12)
        np.testing.assert_allclose(
            nx.to_numpy(nx.log(nx.abs(arr))),
            np.log(np.abs(values)), atol=1e-12)

    def test_where_and_logical(self, nx):
        values = np.array([[1.0, -2.0, 3.0]])
        arr = nx.asarray(values, dtype=nx.float64)
        mask = arr > 0.0
        np.testing.assert_array_equal(
            nx.to_numpy(nx.where(mask, arr, nx.zeros((1, 3),
                                                     dtype=nx.float64))),
            np.where(values > 0, values, 0.0))
        other = nx.asarray(np.array([[True, True, False]]),
                           dtype=nx.bool)
        np.testing.assert_array_equal(
            nx.to_numpy(nx.logical_or(mask, other)),
            [[True, True, True]])
        assert bool(nx.to_numpy(nx.any(mask)))
        assert not bool(nx.to_numpy(nx.all(mask)))
        np.testing.assert_array_equal(
            nx.to_numpy(nx.any(mask, axis=1)), [True])

    def test_isfinite(self, nx):
        values = np.array([1.0, np.inf, np.nan])
        got = nx.to_numpy(nx.isfinite(nx.asarray(values,
                                                 dtype=nx.float64)))
        np.testing.assert_array_equal(got, [True, False, False])

    def test_reductions(self, nx, rng):
        values = rng.normal(size=(3, 4, 5))
        arr = nx.asarray(values, dtype=nx.float64)
        np.testing.assert_allclose(
            nx.to_numpy(nx.sum(arr, axis=2)), values.sum(axis=2),
            atol=1e-12)
        np.testing.assert_allclose(
            nx.to_numpy(nx.sum(arr, axis=1, keepdims=True)),
            values.sum(axis=1, keepdims=True), atol=1e-12)
        np.testing.assert_allclose(
            nx.to_numpy(nx.max(arr, axis=(1, 2))),
            values.max(axis=(1, 2)), atol=1e-15)
        np.testing.assert_allclose(
            nx.to_numpy(nx.min(arr, axis=1)), values.min(axis=1),
            atol=1e-15)
        assert nx.scalar(nx.max(arr)) == pytest.approx(values.max())


class TestKernelConformance:
    """The refactored OT kernels run correctly on every backend."""

    def test_batched_north_west_corner(self, nx, rng):
        mu = rng.dirichlet(np.ones(9), size=5)
        nu = rng.dirichlet(np.ones(7), size=5)
        rows, cols, masses = batched_north_west_corner(mu, nu, backend=nx)
        rows_h = nx.to_numpy(rows)
        cols_h = nx.to_numpy(cols)
        masses_h = nx.to_numpy(masses)
        for b in range(5):
            plan = np.zeros((9, 7))
            np.add.at(plan, (rows_h[b], cols_h[b]), masses_h[b])
            np.testing.assert_allclose(plan,
                                       north_west_corner(mu[b], nu[b]),
                                       atol=1e-12)

    def test_batched_north_west_corner_validation(self, nx):
        with pytest.raises(ValidationError, match="batch size"):
            batched_north_west_corner(np.ones((2, 3)), np.ones((3, 3)),
                                      backend=nx)
        with pytest.raises(ValidationError, match="non-negative"):
            batched_north_west_corner(np.array([[0.5, -0.5]]),
                                      np.array([[1.0]]), backend=nx)

    def test_serial_sinkhorn(self, nx, rng):
        n, m = 10, 12
        xs = np.sort(rng.normal(size=(n, 1)), axis=0)
        ys = np.sort(rng.normal(size=(m, 1)), axis=0)
        cost = (xs - ys.T) ** 2
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
        reference = sinkhorn(cost, mu, nu, epsilon=5e-2, tol=1e-10)
        result = sinkhorn(cost, mu, nu, epsilon=5e-2, tol=1e-10,
                          backend=nx)
        assert result.converged
        np.testing.assert_allclose(result.plan, reference.plan,
                                   atol=1e-9)
        reference_log = sinkhorn_log(cost, mu, nu, epsilon=5e-2,
                                     tol=1e-10)
        result_log = sinkhorn_log(cost, mu, nu, epsilon=5e-2, tol=1e-10,
                                  backend=nx)
        assert result_log.converged
        np.testing.assert_allclose(result_log.plan, reference_log.plan,
                                   atol=1e-9)

    def test_batched_sinkhorn_kernels(self, nx, rng):
        B, n = 4, 11
        costs = np.stack([
            (np.sort(rng.normal(size=(n, 1)), axis=0)
             - np.sort(rng.normal(size=(n, 1)), axis=0).T) ** 2
            for _ in range(B)])
        mus = rng.dirichlet(np.ones(n), size=B)
        nus = rng.dirichlet(np.ones(n), size=B)
        for engine, serial in ((batched_sinkhorn, sinkhorn),
                               (batched_sinkhorn_log, sinkhorn_log)):
            outcomes = engine(costs, mus, nus, epsilon=5e-2, tol=1e-10,
                              raise_on_failure=False, backend=nx)
            for b, outcome in enumerate(outcomes):
                reference = serial(costs[b], mus[b], nus[b],
                                   epsilon=5e-2, tol=1e-10,
                                   raise_on_failure=False)
                assert outcome.converged == reference.converged
                np.testing.assert_allclose(outcome.plan, reference.plan,
                                           atol=1e-9)

    def test_exact_solver_on_backend(self, nx, rng):
        n = 13
        nodes = np.sort(rng.normal(size=n))
        problem = OTProblem(source_weights=rng.dirichlet(np.ones(n)),
                            target_weights=rng.dirichlet(np.ones(n)),
                            source_support=nodes,
                            target_support=nodes + 0.5)
        reference = solve(problem, method="exact")
        result = solve(problem, method="exact", backend=nx)
        np.testing.assert_allclose(result.plan.matrix,
                                   reference.plan.matrix, atol=1e-12)
        assert result.value == pytest.approx(reference.value, abs=1e-12)


class TestNumpyBitIdentity:
    """The numpy backend is not merely close — it is the historical
    implementation, operation for operation."""

    def test_monotone_engine_explicit_numpy_backend_is_bitwise(self, rng):
        n = 16
        nodes = np.sort(rng.normal(size=n))
        problem = OTProblem(source_weights=rng.dirichlet(np.ones(n)),
                            target_weights=rng.dirichlet(np.ones(n)),
                            source_support=nodes,
                            target_support=nodes * 2.0)
        default = solve(problem, method="exact")
        explicit = solve(problem, method="exact", backend="numpy")
        np.testing.assert_array_equal(explicit.plan.matrix,
                                      default.plan.matrix)
        assert explicit.value == default.value

    def test_sinkhorn_explicit_numpy_backend_is_bitwise(self, rng):
        n = 10
        cost = np.abs(rng.normal(size=(n, n)))
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(n))
        for fn in (sinkhorn, sinkhorn_log):
            default = fn(cost, mu, nu, epsilon=5e-2, tol=1e-10,
                         raise_on_failure=False)
            explicit = fn(cost, mu, nu, epsilon=5e-2, tol=1e-10,
                          raise_on_failure=False, backend="numpy")
            np.testing.assert_array_equal(explicit.plan, default.plan)
            assert explicit.iterations == default.iterations
