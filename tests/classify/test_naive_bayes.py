"""Tests for Gaussian naive Bayes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.naive_bayes import GaussianNaiveBayes
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def gaussian_problem(rng):
    n = 400
    y = rng.integers(0, 2, size=n)
    x = rng.normal(size=(n, 2)) + 2.5 * y[:, None]
    return x, y


class TestFit:
    def test_high_accuracy_on_separated_classes(self, gaussian_problem):
        x, y = gaussian_problem
        model = GaussianNaiveBayes().fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_missing_class_rejected(self, rng):
        with pytest.raises(ValidationError, match="absent"):
            GaussianNaiveBayes().fit(rng.normal(size=(5, 1)),
                                     np.zeros(5, dtype=int))

    def test_nonbinary_rejected(self, rng):
        with pytest.raises(ValidationError, match="binary"):
            GaussianNaiveBayes().fit(rng.normal(size=(3, 1)), [0, 1, 2])

    def test_zero_variance_feature_floored(self):
        x = np.array([[0.0, 1.0], [0.0, 2.0], [1.0, 3.0], [1.0, 4.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNaiveBayes().fit(x, y)
        assert np.isfinite(model.predict_proba(x)).all()


class TestPredict:
    def test_not_fitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict(rng.normal(size=(2, 2)))

    def test_proba_sums_complementary(self, gaussian_problem):
        x, y = gaussian_problem
        model = GaussianNaiveBayes().fit(x, y)
        proba = model.predict_proba(x)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_predict_matches_argmax_proba(self, gaussian_problem):
        x, y = gaussian_problem
        model = GaussianNaiveBayes().fit(x, y)
        labels = model.predict(x)
        proba = model.predict_proba(x)
        np.testing.assert_array_equal(labels, (proba >= 0.5).astype(int))

    def test_prior_shifts_decisions(self, rng):
        # Heavily imbalanced training set biases predictions toward the
        # majority class on ambiguous points.
        x = np.vstack([rng.normal(0.0, 1.0, size=(180, 1)),
                       rng.normal(1.0, 1.0, size=(20, 1))])
        y = np.concatenate([np.zeros(180, dtype=int),
                            np.ones(20, dtype=int)])
        model = GaussianNaiveBayes().fit(x, y)
        ambiguous = model.predict(np.array([[0.5]]))
        assert ambiguous[0] == 0

    def test_arity_change_rejected(self, gaussian_problem):
        x, y = gaussian_problem
        model = GaussianNaiveBayes().fit(x, y)
        with pytest.raises(ValidationError, match="arity"):
            model.predict(np.zeros((2, 7)))
