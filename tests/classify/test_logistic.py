"""Tests for logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.logistic import LogisticRegression
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture
def separable_problem(rng):
    n = 600
    x = rng.normal(size=(n, 2))
    logits = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.3
    y = (rng.random(n) < 1.0 / (1.0 + np.exp(-logits))).astype(int)
    return x, y


class TestFit:
    def test_accuracy_on_generating_model(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression().fit(x, y)
        assert model.accuracy(x, y) > 0.8

    def test_recovers_bayes_rule_direction(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression(l2=1e-6).fit(x, y)
        weights = model.coef_
        # Standardised coefficients: positive on x0, negative on x1.
        assert weights[1] > 0.0 > weights[2]

    def test_perfectly_separable_does_not_blow_up(self, rng):
        x = np.vstack([rng.normal(-5.0, 0.3, size=(50, 1)),
                       rng.normal(5.0, 0.3, size=(50, 1))])
        y = np.concatenate([np.zeros(50, dtype=int),
                            np.ones(50, dtype=int)])
        model = LogisticRegression(l2=1e-3).fit(x, y)
        assert np.all(np.isfinite(model.coef_))
        assert model.accuracy(x, y) == pytest.approx(1.0)

    def test_constant_feature_handled(self, rng):
        x = np.column_stack([np.ones(100), rng.normal(size=100)])
        y = (x[:, 1] > 0).astype(int)
        model = LogisticRegression().fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_nonbinary_targets_rejected(self, rng):
        with pytest.raises(ValidationError, match="binary"):
            LogisticRegression().fit(rng.normal(size=(4, 1)), [0, 1, 2, 1])

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError, match="mismatch"):
            LogisticRegression().fit(rng.normal(size=(4, 1)), [0, 1])

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError, match="l2"):
            LogisticRegression(l2=-1.0)


class TestPredict:
    def test_not_fitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(rng.normal(size=(2, 2)))

    def test_proba_bounds(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        assert np.all((proba > 0.0) & (proba < 1.0))

    def test_threshold_shifts_positives(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression().fit(x, y)
        lenient = model.predict(x, threshold=0.1).mean()
        strict = model.predict(x, threshold=0.9).mean()
        assert lenient > strict

    def test_calibration_roughly_correct(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        bucket = (proba > 0.4) & (proba < 0.6)
        if bucket.sum() > 30:
            assert y[bucket].mean() == pytest.approx(0.5, abs=0.2)

    def test_arity_change_rejected(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ValidationError, match="arity"):
            model.predict(np.zeros((2, 5)))

    def test_no_intercept_variant(self, separable_problem):
        x, y = separable_problem
        model = LogisticRegression(fit_intercept=False).fit(x, y)
        assert model.coef_.size == 2
        assert model.accuracy(x, y) > 0.75
