"""Tests for the serving tier's bounded LRU cache."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.serve.cache import LRUCache


class TestBasics:
    def test_get_or_create_builds_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1

    def test_get_without_factory(self):
        cache = LRUCache(2)
        assert cache.get("absent") is None
        assert cache.get("absent", "fallback") == "fallback"
        cache.get_or_create("k", lambda: 7)
        assert cache.get("k") == 7

    def test_len_and_contains(self):
        cache = LRUCache(3)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_clear(self):
        cache = LRUCache(3)
        cache.get_or_create("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0


class TestEviction:
    def test_lru_entry_evicted_at_capacity(self):
        cache = LRUCache(2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("c", lambda: 3)  # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_refreshes_recency(self):
        cache = LRUCache(2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: 0)  # hit: "b" is now LRU
        cache.get_or_create("c", lambda: 3)  # evicts "b", not "a"
        assert "a" in cache and "b" not in cache

    def test_keys_ordered_lru_first(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.get_or_create(key, lambda: 0)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_evicted_key_rebuilds(self):
        cache = LRUCache(1)
        cache.get_or_create("a", lambda: "first")
        cache.get_or_create("b", lambda: "other")
        assert cache.get_or_create("a", lambda: "rebuilt") == "rebuilt"


class TestStats:
    def test_counters(self):
        cache = LRUCache(2)
        cache.get_or_create("a", lambda: 1)   # miss
        cache.get_or_create("a", lambda: 1)   # hit
        cache.get_or_create("b", lambda: 2)   # miss
        cache.get_or_create("c", lambda: 3)   # miss + eviction
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 3, "evictions": 1,
                         "size": 2, "capacity": 2}

    def test_get_counts_misses(self):
        cache = LRUCache(2)
        cache.get("nope")
        assert cache.stats()["misses"] == 1


class TestConcurrency:
    def test_parallel_get_or_create_is_consistent(self):
        cache = LRUCache(8)
        built = []

        def factory(key):
            built.append(key)
            return key * 2

        def worker():
            for _ in range(200):
                for key in range(8):
                    assert cache.get_or_create(
                        key, lambda k=key: factory(k)) == key * 2

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Capacity 8 holds all 8 keys: each built exactly once.
        assert sorted(built) == list(range(8))
        stats = cache.stats()
        assert stats["misses"] == 8
        assert stats["evictions"] == 0


class TestValidation:
    @pytest.mark.parametrize("capacity", [0, -1, 2.5, "big", None])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(ValidationError, match="capacity"):
            LRUCache(capacity)
