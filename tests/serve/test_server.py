"""End-to-end tests for the HTTP serving tier (in-process server)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.repair import repair_dataset
from repro.data.dataset import FairnessDataset
from repro.exceptions import DataError
from repro.serve import BackgroundServer, RepairService
from repro.serve.client import (get_json, post_json, repair_payload,
                                repair_remote)


@pytest.fixture(scope="module")
def designed():
    rng = np.random.default_rng(7)
    n = 700
    u = rng.integers(0, 2, size=n)
    s = rng.integers(0, 2, size=n)
    features = rng.normal(size=(n, 2)) + s[:, None]
    research = FairnessDataset(features[:500], s[:500], u[:500])
    queries = FairnessDataset(features[500:], s[500:], u[500:])
    return design_repair(research, 16), queries


@pytest.fixture()
def server(designed):
    plan, _ = designed
    service = RepairService(plan)
    with BackgroundServer(service, max_batch=8, max_wait=0.01) as bg:
        yield bg


class TestEndpoints:
    def test_healthz(self, server):
        health = get_json(server.url + "/healthz")
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_stats_shape(self, designed, server):
        _, queries = designed
        repair_remote(server.url, queries, seed=1)
        stats = get_json(server.url + "/stats")
        assert stats["service"]["requests"] == 1
        assert stats["service"]["rows"] == len(queries)
        assert stats["batcher"]["flushes"] >= 1
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p50_ms"] > 0
        assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]

    def test_unknown_path_404(self, server):
        with pytest.raises(DataError, match="404"):
            get_json(server.url + "/nope")
        with pytest.raises(DataError, match="404"):
            post_json(server.url + "/nope", {})


class TestRepairEndpoint:
    def test_seeded_response_bit_identical_to_offline(self, designed,
                                                      server):
        plan, queries = designed
        reference = repair_dataset(queries, plan,
                                   rng=np.random.default_rng(99)).features
        got = repair_remote(server.url, queries, seed=99)
        # Over-the-wire JSON floats round-trip via repr: exact equality.
        np.testing.assert_array_equal(got, reference)

    def test_concurrent_clients_all_bit_identical(self, designed, server):
        plan, queries = designed
        n_clients = 6
        chunk = len(queries) // n_clients
        outcomes = [None] * n_clients

        def client(i):
            rows = slice(i * chunk, (i + 1) * chunk)
            subset = FairnessDataset(queries.features[rows],
                                     queries.s[rows], queries.u[rows])
            reference = repair_dataset(
                subset, plan,
                rng=np.random.default_rng(1000 + i)).features
            got = repair_remote(server.url, subset, seed=1000 + i)
            outcomes[i] = np.array_equal(got, reference)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert outcomes == [True] * n_clients
        stats = get_json(server.url + "/stats")
        assert stats["service"]["requests"] == n_clients
        assert stats["service"]["errors"] == 0

    def test_unseeded_request_served(self, designed, server):
        _, queries = designed
        got = repair_remote(server.url, queries)
        assert got.shape == queries.features.shape
        assert np.all(np.isfinite(got))

    def test_validation_error_maps_to_400(self, designed, server):
        _, queries = designed
        payload = repair_payload(queries, seed=0)
        payload["features"] = [row[:1] for row in payload["features"]]
        with pytest.raises(DataError, match="400"):
            post_json(server.url + "/repair", payload)
        # The server survives the bad request.
        assert get_json(server.url + "/healthz")["status"] == "ok"

    def test_malformed_body_maps_to_400(self, server):
        with pytest.raises(DataError, match="400"):
            post_json(server.url + "/repair", {"features": "garbage"})


class TestBatching:
    def test_concurrent_requests_share_flushes(self, designed):
        plan, queries = designed
        service = RepairService(plan)
        # A wait generous enough that all threads join one batch.
        with BackgroundServer(service, max_batch=64,
                              max_wait=0.25) as server:
            n_clients = 5

            def client(i):
                rows = slice(i * 20, (i + 1) * 20)
                subset = FairnessDataset(queries.features[rows],
                                         queries.s[rows], queries.u[rows])
                repair_remote(server.url, subset, seed=i)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            stats = get_json(server.url + "/stats")
        assert stats["batcher"]["items"] == n_clients
        assert stats["batcher"]["flushes"] < n_clients
        assert stats["batcher"]["max_batch_seen"] >= 2
