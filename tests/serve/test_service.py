"""Tests for the RepairService engine (bit-identity, caching, errors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_repair
from repro.core.repair import repair_dataset
from repro.core.serialize import save_plan
from repro.data.dataset import FairnessDataset
from repro.exceptions import DataError, ValidationError
from repro.serve.service import RepairRequest, RepairService


@pytest.fixture(scope="module")
def designed():
    """One plan + matching query data, shared across the module."""
    rng = np.random.default_rng(42)
    n = 900
    u = rng.integers(0, 3, size=n)
    s = rng.integers(0, 2, size=n)
    features = rng.normal(size=(n, 2)) + s[:, None] * 0.8 + u[:, None] * 0.3
    research = FairnessDataset(features[:600], s[:600], u[:600])
    queries = FairnessDataset(features[600:], s[600:], u[600:])
    plan = design_repair(research, 16, t=0.5)
    return plan, queries


class TestBitIdentity:
    @pytest.mark.parametrize("rounding,output", [
        ("stochastic", "sample"),
        ("nearest", "sample"),
        ("stochastic", "barycentric"),
        ("stochastic", "interpolated"),
    ])
    def test_single_request_matches_offline(self, designed, rounding,
                                            output):
        plan, queries = designed
        service = RepairService(plan, rounding=rounding, output=output)
        reference = repair_dataset(queries, plan,
                                   rng=np.random.default_rng(7),
                                   rounding=rounding,
                                   output=output).features
        got = service.repair(queries, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(got, reference)

    def test_batched_requests_match_their_solo_references(self, designed):
        # The property the whole tier rests on: merging concurrent
        # requests into shared per-cell dispatches must not change any
        # response bit.
        plan, queries = designed
        service = RepairService(plan)
        slices = [slice(0, 80), slice(80, 210), slice(210, 300)]
        requests, references = [], []
        for seed, rows in enumerate(slices, start=1):
            subset = FairnessDataset(queries.features[rows],
                                     queries.s[rows], queries.u[rows])
            requests.append(RepairRequest(
                subset, np.random.default_rng(seed)))
            references.append(repair_dataset(
                subset, plan, rng=np.random.default_rng(seed)).features)
        results = service.repair_many(requests)
        for got, reference in zip(results, references):
            np.testing.assert_array_equal(got, reference)
        stats = service.stats()
        # Cells shared by several requests dispatched once, not thrice.
        assert stats["cell_items"] > stats["cell_dispatches"]

    def test_batched_equals_sequential(self, designed):
        plan, queries = designed
        batched = RepairService(plan)
        sequential = RepairService(plan)
        subsets = [FairnessDataset(queries.features[a:b], queries.s[a:b],
                                   queries.u[a:b])
                   for a, b in ((0, 100), (100, 250))]
        requests = [RepairRequest(subset, np.random.default_rng(seed))
                    for seed, subset in enumerate(subsets)]
        merged = batched.repair_many(requests)
        solo = [sequential.repair(subset, rng=np.random.default_rng(seed))
                for seed, subset in enumerate(subsets)]
        for a, b in zip(merged, solo):
            np.testing.assert_array_equal(a, b)


class TestFromPath:
    def test_plain_archive(self, designed, tmp_path):
        plan, queries = designed
        path = save_plan(plan, tmp_path / "plan.npz")
        service = RepairService.from_path(path, mmap=True)
        reference = repair_dataset(queries, plan,
                                   rng=np.random.default_rng(3)).features
        got = service.repair(queries, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(got, reference)

    def test_shard_manifest(self, designed, tmp_path):
        plan, queries = designed
        manifest = save_plan(plan, tmp_path / "sharded.npz", shard_by="u")
        service = RepairService.from_path(manifest, mmap=True,
                                          max_shards=2)
        reference = repair_dataset(queries, plan,
                                   rng=np.random.default_rng(3)).features
        got = service.repair(queries, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(got, reference)
        assert "shards" in service.stats()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            RepairService.from_path(tmp_path / "nope.npz")


class TestCacheBehaviour:
    def test_cells_cached_across_requests(self, designed):
        plan, queries = designed
        service = RepairService(plan)
        service.repair(queries, rng=np.random.default_rng(0))
        first = service.stats()["cache"]
        service.repair(queries, rng=np.random.default_rng(1))
        second = service.stats()["cache"]
        assert second["misses"] == first["misses"]  # all warm now
        assert second["hits"] > first["hits"]

    def test_tiny_cache_evicts_and_still_answers_identically(self,
                                                             designed):
        plan, queries = designed
        roomy = RepairService(plan, cache_size=256)
        tiny = RepairService(plan, cache_size=1)
        a = roomy.repair(queries, rng=np.random.default_rng(5))
        b = tiny.repair(queries, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
        assert tiny.stats()["cache"]["evictions"] > 0
        assert tiny.stats()["cache"]["size"] == 1


class TestValidationAndErrors:
    def test_feature_count_mismatch_is_isolated(self, designed):
        plan, queries = designed
        service = RepairService(plan)
        narrow = FairnessDataset(queries.features[:10, :1],
                                 queries.s[:10], queries.u[:10])
        good = FairnessDataset(queries.features[:10], queries.s[:10],
                               queries.u[:10])
        results = service.repair_many([
            RepairRequest(narrow, np.random.default_rng(0)),
            RepairRequest(good, np.random.default_rng(1))])
        assert isinstance(results[0], ValidationError)
        assert isinstance(results[1], np.ndarray)
        assert service.stats()["errors"] == 1

    def test_uncovered_group_rejected(self, designed):
        plan, queries = designed
        service = RepairService(plan)
        alien = FairnessDataset(queries.features[:6], queries.s[:6],
                                np.full(6, 99))
        with pytest.raises(ValidationError, match="u=\\[99\\]"):
            service.repair(alien)

    def test_bad_modes_rejected(self, designed):
        plan, _ = designed
        with pytest.raises(ValidationError, match="rounding"):
            RepairService(plan, rounding="psychic")
        with pytest.raises(ValidationError, match="output"):
            RepairService(plan, output="hologram")

    def test_non_plan_rejected(self):
        with pytest.raises(ValidationError, match="RepairPlan"):
            RepairService({"not": "a plan"})


class TestRequestPayloads:
    def test_round_trip(self, designed):
        _, queries = designed
        payload = {"features": queries.features[:5].tolist(),
                   "s": queries.s[:5].tolist(),
                   "u": queries.u[:5].tolist(), "seed": 11}
        request = RepairRequest.from_payload(payload)
        assert len(request.dataset) == 5
        # Seeded payloads must reproduce the seeded offline stream.
        expected = np.random.default_rng(11).random(4)
        np.testing.assert_array_equal(request.rng.random(4), expected)

    @pytest.mark.parametrize("payload,match", [
        ("not a dict", "JSON object"),
        ({"features": [[1.0]]}, "missing keys"),
        ({"features": [[1.0]], "s": [0], "u": [0], "seed": "x"}, "seed"),
        ({"features": [[np.nan]], "s": [0], "u": [0]}, "invalid"),
        ({"features": [[1.0], [2.0]], "s": [0], "u": [0]}, "invalid"),
    ])
    def test_bad_payloads_rejected(self, payload, match):
        with pytest.raises(DataError, match=match):
            RepairRequest.from_payload(payload)
