"""Tests for the request micro-batcher."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ValidationError
from repro.serve.batcher import MicroBatcher


def _echo_dispatch(record):
    def dispatch(items):
        record.append(list(items))
        return [item * 10 for item in items]
    return dispatch


class TestFlushOnSize:
    def test_full_batch_dispatches_together(self):
        batches = []
        batcher = MicroBatcher(_echo_dispatch(batches), max_batch=4,
                               max_wait=30.0)  # timeout can't be the trigger
        results = [None] * 4

        def submit(i):
            results[i] = batcher.submit(i)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == [0, 10, 20, 30]
        assert len(batches) == 1 and sorted(batches[0]) == [0, 1, 2, 3]
        stats = batcher.stats()
        assert stats["size_flushes"] == 1
        assert stats["timeout_flushes"] == 0
        assert stats["max_batch_seen"] == 4

    def test_overflow_rolls_into_next_batch(self):
        batches = []
        batcher = MicroBatcher(_echo_dispatch(batches), max_batch=2,
                               max_wait=0.05)
        results = []
        lock = threading.Lock()

        def submit(i):
            value = batcher.submit(i)
            with lock:
                results.append((i, value))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(results) == [(i, i * 10) for i in range(5)]
        assert sum(len(batch) for batch in batches) == 5


class TestFlushOnTimeout:
    def test_lone_item_flushes_after_max_wait(self):
        batches = []
        batcher = MicroBatcher(_echo_dispatch(batches), max_batch=64,
                               max_wait=0.01)
        start = time.perf_counter()
        assert batcher.submit(7) == 70
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0  # returned promptly, not hung
        assert batches == [[7]]
        assert batcher.stats()["timeout_flushes"] == 1

    def test_zero_wait_still_dispatches(self):
        batches = []
        batcher = MicroBatcher(_echo_dispatch(batches), max_batch=64,
                               max_wait=0.0)
        assert batcher.submit(1) == 10

    def test_explicit_flush(self):
        # flush() drains without a submitter; nothing pending is a no-op.
        batches = []
        batcher = MicroBatcher(_echo_dispatch(batches), max_batch=4,
                               max_wait=60.0)
        batcher.flush()
        assert batches == []


class TestErrorDelivery:
    def test_per_item_exception_raised_in_owner_only(self):
        def dispatch(items):
            return [ValueError(f"bad {item}") if item == 1 else item
                    for item in items]

        batcher = MicroBatcher(dispatch, max_batch=2, max_wait=10.0)
        outcomes = {}

        def submit(i):
            try:
                outcomes[i] = batcher.submit(i)
            except ValueError as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes[0] == 0
        assert isinstance(outcomes[1], ValueError)

    def test_dispatch_failure_fails_whole_batch(self):
        def dispatch(items):
            raise RuntimeError("engine down")

        batcher = MicroBatcher(dispatch, max_batch=8, max_wait=0.005)
        with pytest.raises(RuntimeError, match="engine down"):
            batcher.submit(1)

    def test_length_mismatch_detected(self):
        batcher = MicroBatcher(lambda items: [], max_batch=8,
                               max_wait=0.005)
        with pytest.raises(RuntimeError, match="results"):
            batcher.submit(1)


class TestStats:
    def test_mean_batch(self):
        batcher = MicroBatcher(lambda items: list(items), max_batch=8,
                               max_wait=0.001)
        for i in range(3):
            batcher.submit(i)
        stats = batcher.stats()
        assert stats["items"] == 3
        assert stats["flushes"] == 3
        assert stats["mean_batch"] == pytest.approx(1.0)
        assert stats["max_batch"] == 8
        assert stats["max_wait_s"] == 0.001


class TestValidation:
    @pytest.mark.parametrize("max_batch", [0, -3, 1.5])
    def test_bad_max_batch(self, max_batch):
        with pytest.raises(ValidationError, match="max_batch"):
            MicroBatcher(lambda items: items, max_batch=max_batch)

    def test_negative_max_wait(self):
        with pytest.raises(ValidationError, match="max_wait"):
            MicroBatcher(lambda items: items, max_wait=-0.1)
