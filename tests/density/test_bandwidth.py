"""Tests for bandwidth selectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.density.bandwidth import (scott_bandwidth, select_bandwidth,
                                     silverman_bandwidth)
from repro.exceptions import ValidationError


class TestSilverman:
    def test_known_value_classic(self):
        # For sigma=1, n=100: h = 1.06 * 1 * 100^(-0.2).
        rng = np.random.default_rng(0)
        xs = rng.normal(size=100)
        expected = 1.06 * np.std(xs, ddof=1) * 100 ** (-0.2)
        assert silverman_bandwidth(xs, robust=False) == pytest.approx(
            expected)

    def test_robust_uses_min_of_spreads(self):
        rng = np.random.default_rng(1)
        xs = rng.normal(size=200)
        xs[:5] = 100.0  # outliers inflate sigma but not IQR
        robust = silverman_bandwidth(xs, robust=True)
        classic = silverman_bandwidth(xs, robust=False)
        assert robust < classic

    def test_shrinks_with_sample_size(self, rng):
        xs = rng.normal(size=1000)
        h_small = silverman_bandwidth(xs[:50])
        h_large = silverman_bandwidth(xs)
        assert h_large < h_small

    def test_degenerate_sample_positive_floor(self):
        assert silverman_bandwidth([5.0, 5.0, 5.0]) > 0.0

    def test_single_point_positive(self):
        assert silverman_bandwidth([1.0]) > 0.0


class TestScott:
    def test_scott_formula(self, rng):
        xs = rng.normal(size=64)
        expected = np.std(xs, ddof=1) * 64 ** (-0.2)
        assert scott_bandwidth(xs) == pytest.approx(expected)

    def test_scott_exceeds_robust_silverman_on_normal(self, rng):
        xs = rng.normal(size=500)
        assert scott_bandwidth(xs) > silverman_bandwidth(xs)


class TestSelect:
    def test_dispatch_silverman(self, rng):
        xs = rng.normal(size=30)
        assert select_bandwidth(xs, "silverman") == pytest.approx(
            silverman_bandwidth(xs, robust=True))

    def test_dispatch_classic(self, rng):
        xs = rng.normal(size=30)
        assert select_bandwidth(xs, "silverman-classic") == pytest.approx(
            silverman_bandwidth(xs, robust=False))

    def test_dispatch_scott(self, rng):
        xs = rng.normal(size=30)
        assert select_bandwidth(xs, "scott") == pytest.approx(
            scott_bandwidth(xs))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown bandwidth"):
            select_bandwidth([1.0, 2.0], "oracle")
