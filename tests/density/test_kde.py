"""Tests for Gaussian KDE (paper Eqs. 11-12)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import integrate

from repro.density.kde import GaussianKDE, gaussian_kernel, interpolate_pmf
from repro.exceptions import ValidationError


class TestKernel:
    def test_integrates_to_one(self):
        xs = np.linspace(-40, 40, 16001)
        for h in (0.3, 1.0, 2.5):
            integral = integrate.trapezoid(gaussian_kernel(xs, h), xs)
            assert integral == pytest.approx(1.0, rel=1e-6)

    def test_symmetry(self):
        assert gaussian_kernel(1.5, 1.0) == pytest.approx(
            gaussian_kernel(-1.5, 1.0))

    def test_peak_at_zero(self):
        xs = np.linspace(-3, 3, 101)
        values = gaussian_kernel(xs, 0.7)
        assert np.argmax(values) == 50

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValidationError, match="bandwidth"):
            gaussian_kernel(0.0, 0.0)


class TestInterpolatePmf:
    def test_normalised(self, rng):
        xs = rng.normal(size=80)
        grid = np.linspace(-4, 4, 50)
        pmf = interpolate_pmf(xs, grid)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0.0)

    def test_mass_concentrates_near_data(self, rng):
        xs = rng.normal(loc=2.0, scale=0.3, size=100)
        grid = np.linspace(-5, 5, 101)
        pmf = interpolate_pmf(xs, grid)
        peak = grid[np.argmax(pmf)]
        assert abs(peak - 2.0) < 0.5

    def test_explicit_bandwidth_honoured(self, rng):
        xs = rng.normal(size=50)
        grid = np.linspace(-3, 3, 61)
        narrow = interpolate_pmf(xs, grid, bandwidth=0.05)
        wide = interpolate_pmf(xs, grid, bandwidth=2.0)
        # Narrow bandwidth -> spikier pmf -> higher max.
        assert narrow.max() > wide.max()

    def test_recovers_gaussian_shape(self, rng):
        xs = rng.normal(size=3000)
        grid = np.linspace(-3, 3, 121)
        pmf = interpolate_pmf(xs, grid)
        truth = np.exp(-0.5 * grid ** 2)
        truth = truth / truth.sum()
        assert np.max(np.abs(pmf - truth)) < 0.01

    def test_underflow_falls_back_to_histogram(self):
        # Bandwidth so small the kernel underflows at every grid node.
        xs = np.array([0.5000001])
        grid = np.linspace(0.0, 1.0, 11)
        pmf = interpolate_pmf(xs, grid, bandwidth=1e-300)
        assert pmf.sum() == pytest.approx(1.0)

    def test_invalid_bandwidth_rejected(self, rng):
        with pytest.raises(ValidationError, match="bandwidth"):
            interpolate_pmf(rng.normal(size=10), np.linspace(0, 1, 5),
                            bandwidth=-1.0)


class TestGaussianKDE:
    def test_pdf_integrates_to_one(self, rng):
        kde = GaussianKDE(rng.normal(size=60))
        xs = np.linspace(-8, 8, 2001)
        integral = integrate.trapezoid(kde.pdf(xs), xs)
        assert integral == pytest.approx(1.0, rel=1e-4)

    def test_log_pdf_consistent(self, rng):
        kde = GaussianKDE(rng.normal(size=40))
        xs = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(np.exp(kde.log_pdf(xs)), kde.pdf(xs),
                                   rtol=1e-9)

    def test_log_pdf_stable_in_far_tail(self, rng):
        kde = GaussianKDE(rng.normal(size=20), bandwidth=0.5)
        value = kde.log_pdf([1e3])
        assert np.isfinite(value).all()
        assert value[0] < -1e5  # deep tail

    def test_cdf_monotone_and_bounded(self, rng):
        kde = GaussianKDE(rng.normal(size=30))
        xs = np.linspace(-6, 6, 101)
        cdf = kde.cdf(xs)
        assert np.all(np.diff(cdf) >= 0.0)
        assert cdf[0] >= 0.0 and cdf[-1] <= 1.0
        assert cdf[-1] > 0.99

    def test_sampling_matches_distribution(self, rng):
        kde = GaussianKDE(rng.normal(loc=5.0, size=500))
        draws = kde.sample(4000, rng=rng)
        assert draws.mean() == pytest.approx(5.0, abs=0.15)

    def test_sample_invalid_size(self, rng):
        kde = GaussianKDE(rng.normal(size=10))
        with pytest.raises(ValidationError, match="size"):
            kde.sample(0)

    def test_bandwidth_selection_default_silverman(self, rng):
        xs = rng.normal(size=100)
        kde = GaussianKDE(xs)
        from repro.density.bandwidth import silverman_bandwidth
        assert kde.bandwidth == pytest.approx(silverman_bandwidth(xs))

    def test_pmf_on_grid_matches_interpolate(self, rng):
        xs = rng.normal(size=50)
        grid = np.linspace(-3, 3, 30)
        kde = GaussianKDE(xs)
        np.testing.assert_allclose(
            kde.pmf_on_grid(grid),
            interpolate_pmf(xs, grid, bandwidth=kde.bandwidth))
