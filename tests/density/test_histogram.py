"""Tests for histogram density estimation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import integrate

from repro.density.histogram import HistogramDensity, histogram_pmf
from repro.exceptions import ValidationError


class TestHistogramPmf:
    def test_normalised(self, rng):
        xs = rng.normal(size=100)
        grid = np.linspace(-4, 4, 21)
        pmf = histogram_pmf(xs, grid)
        assert pmf.sum() == pytest.approx(1.0)

    def test_nearest_node_assignment(self):
        grid = np.array([0.0, 1.0, 2.0])
        pmf = histogram_pmf([0.1, 0.9, 1.1, 1.9], grid)
        np.testing.assert_allclose(pmf, [0.25, 0.5, 0.25])

    def test_all_mass_one_node(self):
        grid = np.array([0.0, 1.0, 2.0])
        pmf = histogram_pmf([1.0, 1.0, 1.0], grid)
        np.testing.assert_allclose(pmf, [0.0, 1.0, 0.0])

    def test_out_of_range_clipped_to_ends(self):
        grid = np.array([0.0, 1.0])
        pmf = histogram_pmf([-10.0, 10.0], grid)
        np.testing.assert_allclose(pmf, [0.5, 0.5])

    def test_bad_grid_rejected(self):
        with pytest.raises(ValidationError):
            histogram_pmf([0.5], [1.0, 0.0])


class TestHistogramDensity:
    def test_pdf_integrates_to_one(self, rng):
        xs = rng.normal(size=400)
        density = HistogramDensity(xs, n_bins=24)
        grid = np.linspace(xs.min(), xs.max(), 3001)
        integral = integrate.trapezoid(density.pdf(grid), grid)
        assert integral == pytest.approx(1.0, rel=0.02)

    def test_zero_outside_range(self, rng):
        density = HistogramDensity(rng.uniform(0, 1, size=50), n_bins=8)
        assert density.pdf([-1.0])[0] == 0.0
        assert density.pdf([2.0])[0] == 0.0

    def test_right_edge_belongs_to_last_bin(self, rng):
        xs = rng.uniform(0, 1, size=50)
        density = HistogramDensity(xs, n_bins=5)
        assert density.pdf([density.edges[-1]])[0] > 0.0

    def test_degenerate_sample(self):
        density = HistogramDensity([2.0, 2.0], n_bins=4)
        assert density.pdf([2.0])[0] > 0.0

    def test_edges_cover_range(self, rng):
        xs = rng.normal(size=64)
        density = HistogramDensity(xs, n_bins=10)
        assert density.edges[0] == pytest.approx(xs.min())
        assert density.edges[-1] == pytest.approx(xs.max())

    def test_invalid_bins_rejected(self, rng):
        with pytest.raises(ValidationError):
            HistogramDensity(rng.normal(size=10), n_bins=0)
