"""Tests for interpolation grids (Algorithm 1 line 4 and Algorithm 2's cell
arithmetic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.density.grid import InterpolationGrid, uniform_grid
from repro.exceptions import ValidationError


class TestUniformGrid:
    def test_spans_sample_range(self, rng):
        xs = rng.normal(size=50)
        grid = uniform_grid(xs, 10)
        assert grid[0] == pytest.approx(xs.min())
        assert grid[-1] == pytest.approx(xs.max())
        assert grid.size == 10

    def test_uniform_spacing(self, rng):
        grid = uniform_grid(rng.normal(size=30), 17)
        spacings = np.diff(grid)
        np.testing.assert_allclose(spacings, spacings[0])

    def test_matches_paper_formula(self):
        # Line 4: ζ_i = (nQ-i)/(nQ-1) min + (i-1)/(nQ-1) max, i = 1..nQ.
        xs = [2.0, 10.0]
        n_q = 5
        grid = uniform_grid(xs, n_q)
        expected = [((n_q - i) * 2.0 + (i - 1) * 10.0) / (n_q - 1)
                    for i in range(1, n_q + 1)]
        np.testing.assert_allclose(grid, expected)

    def test_padding_widens_range(self):
        grid = uniform_grid([0.0, 10.0], 11, padding=0.1)
        assert grid[0] == pytest.approx(-1.0)
        assert grid[-1] == pytest.approx(11.0)

    def test_degenerate_sample_widened(self):
        grid = uniform_grid([3.0, 3.0], 5)
        assert grid[0] < 3.0 < grid[-1]

    def test_subnormal_span_stays_strictly_increasing(self):
        # Hypothesis counterexample: a denormal-scale span collapses
        # linspace nodes onto the same float; the fallback must widen.
        grid = uniform_grid([0.0, 5e-324], 3)
        assert np.all(np.diff(grid) > 0)

    def test_ulp_collapse_widens_minimally(self):
        # A span of 100 at magnitude 1e16 (ulp 2) cannot carry 200
        # half-unit-spaced nodes; the fallback must widen just enough
        # for strictly increasing nodes while keeping the two sample
        # values in distinct grid cells (not blow up to |x|*1e-6).
        grid = uniform_grid([1e16, 1e16 + 100.0], 200)
        assert np.all(np.diff(grid) > 0)
        locator = InterpolationGrid(grid)
        low_cell = locator.locate(1e16)[0][0]
        high_cell = locator.locate(1e16 + 100.0)[0][0]
        assert low_cell != high_cell
        assert grid[-1] - grid[0] < 1e6  # minimal widening, not 1e10

    def test_negative_padding_rejected(self):
        with pytest.raises(ValidationError, match="padding"):
            uniform_grid([0.0, 1.0], 5, padding=-0.1)

    def test_too_few_states_rejected(self):
        with pytest.raises(ValidationError):
            uniform_grid([0.0, 1.0], 1)


class TestInterpolationGrid:
    def test_from_samples(self, rng):
        xs = rng.normal(size=40)
        grid = InterpolationGrid.from_samples(xs, 25)
        assert grid.n_states == 25
        assert grid.low == pytest.approx(xs.min())
        assert grid.high == pytest.approx(xs.max())

    def test_spacing(self):
        grid = InterpolationGrid(np.linspace(0.0, 10.0, 11))
        assert grid.spacing == pytest.approx(1.0)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            InterpolationGrid(np.array([0.0, 0.0, 1.0]))

    def test_single_node_rejected(self):
        with pytest.raises(ValidationError, match="two nodes"):
            InterpolationGrid(np.array([1.0]))


class TestLocate:
    @pytest.fixture
    def grid(self):
        return InterpolationGrid(np.array([0.0, 1.0, 2.0, 3.0]))

    def test_interior_point(self, grid):
        idx, tau = grid.locate([1.25])
        assert idx[0] == 1
        assert tau[0] == pytest.approx(0.25)

    def test_on_node(self, grid):
        idx, tau = grid.locate([2.0])
        assert idx[0] == 2
        assert tau[0] == pytest.approx(0.0)

    def test_last_node_maps_to_final_cell(self, grid):
        idx, tau = grid.locate([3.0])
        assert idx[0] == 2
        assert tau[0] == pytest.approx(1.0)

    def test_below_range_clipped(self, grid):
        idx, tau = grid.locate([-7.0])
        assert idx[0] == 0
        assert tau[0] == pytest.approx(0.0)

    def test_above_range_clipped(self, grid):
        idx, tau = grid.locate([99.0])
        assert idx[0] == 2
        assert tau[0] == pytest.approx(1.0)

    def test_vectorised(self, grid, rng):
        xs = rng.uniform(-1.0, 4.0, size=100)
        idx, tau = grid.locate(xs)
        assert idx.shape == tau.shape == xs.shape
        assert np.all((idx >= 0) & (idx <= 2))
        assert np.all((tau >= 0.0) & (tau <= 1.0))

    def test_reconstruction_identity_for_interior(self, grid, rng):
        # ζ_q + τ (ζ_{q+1} - ζ_q) must reconstruct interior values.
        xs = rng.uniform(0.0, 3.0, size=50)
        idx, tau = grid.locate(xs)
        rebuilt = grid.nodes[idx] + tau * (grid.nodes[idx + 1]
                                           - grid.nodes[idx])
        np.testing.assert_allclose(rebuilt, xs, atol=1e-12)

    def test_nan_rejected(self, grid):
        with pytest.raises(ValidationError, match="non-finite"):
            grid.locate([np.nan])


class TestCoverage:
    def test_full_coverage(self):
        grid = InterpolationGrid(np.array([0.0, 1.0]))
        assert grid.coverage([0.0, 0.5, 1.0]) == pytest.approx(1.0)

    def test_partial_coverage(self):
        grid = InterpolationGrid(np.array([0.0, 1.0]))
        assert grid.coverage([-1.0, 0.5, 2.0, 0.1]) == pytest.approx(0.5)

    def test_empty_input_full_coverage(self):
        grid = InterpolationGrid(np.array([0.0, 1.0]))
        assert grid.coverage(np.array([])) == 1.0
