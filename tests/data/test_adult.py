"""Tests for the Adult loader and the synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adult import (DEFAULT_ADULT_SIZE, adult_schema,
                              load_adult_csv, synthesize_adult)
from repro.exceptions import DataError


class TestSchema:
    def test_names_and_bounds(self):
        schema = adult_schema()
        assert schema.feature_names == ("age", "hours_per_week")
        assert schema.protected == "sex_male"
        assert schema.unprotected == "college_educated"


class TestSynthesize:
    def test_size_and_schema(self, rng):
        data = synthesize_adult(2000, rng=rng)
        assert len(data) == 2000
        assert data.feature_names == ("age", "hours_per_week")
        assert data.y is not None

    def test_default_size_matches_paper(self):
        assert DEFAULT_ADULT_SIZE == 45_222

    def test_marginals_match_calibration(self, rng):
        data = synthesize_adult(30_000, rng=rng)
        assert np.mean(data.s) == pytest.approx(0.669, abs=0.01)
        # College rate depends on gender (structural bias preserved).
        male_college = np.mean(data.u[data.s == 1])
        female_college = np.mean(data.u[data.s == 0])
        assert male_college > female_college

    def test_feature_ranges(self, rng):
        data = synthesize_adult(5000, rng=rng)
        age = data.features[:, 0]
        hours = data.features[:, 1]
        assert age.min() >= 17.0 and age.max() <= 90.0
        assert hours.min() >= 1.0 and hours.max() <= 99.0

    def test_integer_features(self, rng):
        data = synthesize_adult(1000, rng=rng)
        np.testing.assert_allclose(data.features,
                                   np.round(data.features))

    def test_forty_hour_atom_present(self, rng):
        data = synthesize_adult(10_000, rng=rng)
        hours = data.features[:, 1]
        assert np.mean(hours == 40.0) > 0.3

    def test_gender_gap_in_hours(self, rng):
        data = synthesize_adult(20_000, rng=rng)
        hours = data.features[:, 1]
        gap = hours[data.s == 1].mean() - hours[data.s == 0].mean()
        assert 2.0 < gap < 8.0

    def test_age_skewed_right(self, rng):
        data = synthesize_adult(20_000, rng=rng)
        age = data.features[:, 0]
        assert age.mean() > np.median(age)  # right skew

    def test_outcome_depends_on_gender(self, rng):
        data = synthesize_adult(30_000, rng=rng)
        male_rate = data.y[data.s == 1].mean()
        female_rate = data.y[data.s == 0].mean()
        assert male_rate > female_rate + 0.05

    def test_without_outcome(self, rng):
        data = synthesize_adult(100, rng=rng, with_outcome=False)
        assert data.y is None

    def test_deterministic(self):
        a = synthesize_adult(500, rng=11)
        b = synthesize_adult(500, rng=11)
        np.testing.assert_allclose(a.features, b.features)


class TestLoader:
    ROW = ("39, State-gov, 77516, Bachelors, 13, Never-married, "
           "Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, "
           "United-States, <=50K")
    ROW_FEMALE = ("28, Private, 12345, HS-grad, 9, Married-civ-spouse, "
                  "Sales, Wife, White, Female, 0, 0, 35, "
                  "United-States, >50K")
    ROW_MISSING = ("44, ?, 1234, Masters, 14, Divorced, ?, Unmarried, "
                   "Black, Female, 0, 0, 50, United-States, <=50K")

    def test_parse_basic(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(f"{self.ROW}\n{self.ROW_FEMALE}\n")
        data = load_adult_csv(path)
        assert len(data) == 2
        np.testing.assert_allclose(data.features[0], [39.0, 40.0])
        np.testing.assert_array_equal(data.s, [1, 0])
        np.testing.assert_array_equal(data.u, [1, 0])  # 13 >= 13 > 9
        np.testing.assert_array_equal(data.y, [0, 1])

    def test_missing_values_dropped(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(f"{self.ROW}\n{self.ROW_MISSING}\n")
        data = load_adult_csv(path)
        assert len(data) == 1

    def test_missing_values_raise_when_asked(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(f"{self.ROW_MISSING}\n")
        with pytest.raises(DataError, match="missing"):
            load_adult_csv(path, drop_missing=False)

    def test_blank_lines_and_banner_skipped(self, tmp_path):
        path = tmp_path / "adult.test"
        path.write_text(f"|1x3 Cross validator\n{self.ROW}\n\n")
        data = load_adult_csv(path)
        assert len(data) == 1

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text("1, 2, 3\n")
        with pytest.raises(DataError, match="expected 15"):
            load_adult_csv(path)

    def test_malformed_number_rejected(self, tmp_path):
        path = tmp_path / "adult.data"
        bad = self.ROW.replace("39", "thirty-nine")
        path.write_text(f"{bad}\n")
        with pytest.raises(DataError, match="malformed"):
            load_adult_csv(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_adult_csv(tmp_path / "nope.data")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text("\n")
        with pytest.raises(DataError, match="no usable records"):
            load_adult_csv(path)

    def test_gt50k_test_format(self, tmp_path):
        # adult.test uses ">50K." with a trailing dot.
        path = tmp_path / "adult.test"
        row = self.ROW_FEMALE.replace(">50K", ">50K.")
        path.write_text(f"{row}\n")
        data = load_adult_csv(path)
        np.testing.assert_array_equal(data.y, [1])
