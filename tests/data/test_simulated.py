"""Tests for the paper's simulation generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.simulated import (GaussianMixtureSpec,
                                  paper_simulation_spec,
                                  simulate_paper_data)
from repro.exceptions import ValidationError


class TestPaperSpec:
    def test_paper_defaults(self):
        spec = paper_simulation_spec()
        np.testing.assert_allclose(spec.means[(0, 0)], [-1.0, -1.0])
        np.testing.assert_allclose(spec.means[(1, 0)], [1.0, 1.0])
        np.testing.assert_allclose(spec.means[(0, 1)], [0.0, 0.0])
        assert spec.p_u0 == 0.5
        assert spec.p_s0_given_u == {0: 0.3, 1: 0.1}

    def test_separation_scaling(self):
        spec = paper_simulation_spec(separation=2.0)
        np.testing.assert_allclose(spec.means[(0, 0)], [-2.0, -2.0])
        np.testing.assert_allclose(spec.means[(0, 1)], [0.0, 0.0])

    def test_group_probabilities(self):
        spec = paper_simulation_spec()
        assert spec.group_probability(0, 0) == pytest.approx(0.15)
        assert spec.group_probability(0, 1) == pytest.approx(0.35)
        assert spec.group_probability(1, 0) == pytest.approx(0.05)
        assert spec.group_probability(1, 1) == pytest.approx(0.45)
        total = sum(spec.group_probability(u, s)
                    for u in (0, 1) for s in (0, 1))
        assert total == pytest.approx(1.0)

    def test_exact_group_dependence(self):
        # symKL between N(±delta, I) components: 0.5 * delta' delta.
        spec = paper_simulation_spec()
        oracle = spec.exact_group_dependence()
        assert oracle[0] == pytest.approx(1.0)  # delta = [-1,-1]
        assert oracle[1] == pytest.approx(1.0)

    def test_negative_separation_rejected(self):
        with pytest.raises(ValidationError):
            paper_simulation_spec(separation=-1.0)


class TestSampling:
    def test_sample_shape_and_labels(self, rng):
        spec = paper_simulation_spec()
        data = spec.sample(1000, rng=rng)
        assert len(data) == 1000
        assert data.n_features == 2
        assert set(np.unique(data.s)) <= {0, 1}
        assert set(np.unique(data.u)) <= {0, 1}

    def test_group_frequencies_match_priors(self, rng):
        spec = paper_simulation_spec()
        data = spec.sample(20_000, rng=rng)
        assert np.mean(data.u == 0) == pytest.approx(0.5, abs=0.02)
        u0 = data.s[data.u == 0]
        u1 = data.s[data.u == 1]
        assert np.mean(u0 == 0) == pytest.approx(0.3, abs=0.02)
        assert np.mean(u1 == 0) == pytest.approx(0.1, abs=0.02)

    def test_conditional_means(self, rng):
        spec = paper_simulation_spec()
        data = spec.sample(20_000, rng=rng)
        group = data.group(0, 0)
        np.testing.assert_allclose(group.features.mean(axis=0),
                                   [-1.0, -1.0], atol=0.1)
        group = data.group(1, 0)
        np.testing.assert_allclose(group.features.mean(axis=0),
                                   [1.0, 1.0], atol=0.15)

    def test_outcome_rule_applied(self, rng):
        spec = paper_simulation_spec()
        data = spec.sample(100, rng=rng,
                           outcome_rule=lambda x: x[:, 0] > 0)
        assert data.y is not None
        np.testing.assert_array_equal(data.y,
                                      (data.features[:, 0] > 0).astype(int))

    def test_custom_covariance(self, rng):
        spec = GaussianMixtureSpec(
            means={(0, 0): [0.0], (0, 1): [0.0],
                   (1, 0): [0.0], (1, 1): [0.0]},
            p_u0=0.5, p_s0_given_u={0: 0.5, 1: 0.5},
            covariances={(0, 0): [[25.0]]})
        data = spec.sample(20_000, rng=rng)
        wide = data.group(0, 0).features.std()
        narrow = data.group(0, 1).features.std()
        assert wide == pytest.approx(5.0, rel=0.1)
        assert narrow == pytest.approx(1.0, rel=0.1)

    def test_deterministic_with_seed(self):
        spec = paper_simulation_spec()
        a = spec.sample(50, rng=3)
        b = spec.sample(50, rng=3)
        np.testing.assert_allclose(a.features, b.features)


class TestSpecValidation:
    def test_missing_group_mean_rejected(self):
        with pytest.raises(ValidationError, match="four"):
            GaussianMixtureSpec(means={(0, 0): [0.0]}, p_u0=0.5,
                                p_s0_given_u={0: 0.5, 1: 0.5})

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="dimension"):
            GaussianMixtureSpec(
                means={(0, 0): [0.0], (0, 1): [0.0, 1.0],
                       (1, 0): [0.0], (1, 1): [0.0]},
                p_u0=0.5, p_s0_given_u={0: 0.5, 1: 0.5})

    def test_missing_prior_rejected(self):
        with pytest.raises(ValidationError, match="missing group"):
            GaussianMixtureSpec(
                means={(0, 0): [0.0], (0, 1): [0.0],
                       (1, 0): [0.0], (1, 1): [0.0]},
                p_u0=0.5, p_s0_given_u={0: 0.5})

    def test_bad_covariance_shape_rejected(self):
        with pytest.raises(ValidationError, match="covariance"):
            GaussianMixtureSpec(
                means={(0, 0): [0.0], (0, 1): [0.0],
                       (1, 0): [0.0], (1, 1): [0.0]},
                p_u0=0.5, p_s0_given_u={0: 0.5, 1: 0.5},
                covariances={(0, 0): np.eye(3)})


class TestSimulatePaperData:
    def test_default_split_sizes(self, rng):
        split = simulate_paper_data(rng=rng)
        assert split.n_research == 500
        assert split.n_archive == 5000

    def test_custom_sizes(self, rng):
        split = simulate_paper_data(100, 900, rng=rng)
        assert split.n_research == 100
        assert split.n_archive == 900
