"""Tests for continuous-attribute binning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.binning import AttributeBinner
from repro.data.dataset import FairnessDataset
from repro.exceptions import NotFittedError, ValidationError


class TestQuantileBinning:
    def test_equal_mass_bins(self, rng):
        values = rng.normal(size=10_000)
        binner = AttributeBinner(n_bins=4, strategy="quantile")
        bins = binner.fit_transform(values)
        counts = np.bincount(bins, minlength=4)
        np.testing.assert_allclose(counts / counts.sum(), 0.25, atol=0.02)

    def test_edges_are_quantiles(self, rng):
        values = rng.normal(size=5000)
        binner = AttributeBinner(n_bins=4).fit(values)
        np.testing.assert_allclose(
            binner.edges, np.quantile(values, [0.25, 0.5, 0.75]),
            rtol=1e-9)

    def test_heavy_ties_collapse_bins(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        binner = AttributeBinner(n_bins=4).fit(values)
        assert binner.n_effective_bins < 4
        bins = binner.transform(values)
        assert set(np.unique(bins)) <= set(range(binner.n_effective_bins))


class TestUniformBinning:
    def test_equal_width_edges(self):
        binner = AttributeBinner(n_bins=4, strategy="uniform")
        binner.fit(np.array([0.0, 8.0]))
        np.testing.assert_allclose(binner.edges, [2.0, 4.0, 6.0])

    def test_transform_assigns_by_width(self):
        binner = AttributeBinner(n_bins=4, strategy="uniform")
        binner.fit(np.array([0.0, 8.0]))
        bins = binner.transform([0.5, 2.5, 5.0, 7.9])
        np.testing.assert_array_equal(bins, [0, 1, 2, 3])

    def test_out_of_range_clamped_to_outer_bins(self):
        binner = AttributeBinner(n_bins=3, strategy="uniform")
        binner.fit(np.array([0.0, 3.0]))
        bins = binner.transform([-10.0, 10.0])
        np.testing.assert_array_equal(bins, [0, 2])

    def test_degenerate_sample(self):
        binner = AttributeBinner(n_bins=3, strategy="uniform")
        binner.fit([5.0, 5.0])
        assert binner.transform([5.0])[0] in (0, 1, 2)


class TestApiContract:
    def test_not_fitted_raises(self):
        binner = AttributeBinner()
        with pytest.raises(NotFittedError):
            binner.transform([1.0])
        with pytest.raises(NotFittedError):
            _ = binner.edges
        with pytest.raises(NotFittedError):
            _ = binner.n_effective_bins

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            AttributeBinner(n_bins=1)
        with pytest.raises(ValidationError, match="strategy"):
            AttributeBinner(strategy="kmeans")

    def test_consistent_research_archive_edges(self, rng):
        research_values = rng.normal(size=1000)
        archive_values = rng.normal(size=5000)
        binner = AttributeBinner(n_bins=3).fit(research_values)
        research_bins = binner.transform(research_values)
        archive_bins = binner.transform(archive_values)
        # Same edges: a value maps identically wherever it appears.
        probe = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_array_equal(binner.transform(probe),
                                      binner.transform(probe))
        assert set(np.unique(research_bins)) <= {0, 1, 2}
        assert set(np.unique(archive_bins)) <= {0, 1, 2}


class TestBinDataset:
    def test_replaces_u(self, rng):
        n = 200
        data = FairnessDataset(rng.normal(size=(n, 2)),
                               rng.integers(0, 2, n),
                               np.zeros(n, dtype=int))
        income = rng.gamma(2.0, 10.0, size=n)
        binner = AttributeBinner(n_bins=3).fit(income)
        binned = binner.bin_dataset(data, income)
        assert set(np.unique(binned.u)) <= {0, 1, 2}
        np.testing.assert_array_equal(binned.s, data.s)
        np.testing.assert_allclose(binned.features, data.features)

    def test_length_mismatch_rejected(self, rng):
        data = FairnessDataset(rng.normal(size=(5, 1)),
                               rng.integers(0, 2, 5),
                               np.zeros(5, dtype=int))
        binner = AttributeBinner(n_bins=2).fit(rng.normal(size=5))
        with pytest.raises(ValidationError, match="values for"):
            binner.bin_dataset(data, rng.normal(size=7))

    def test_end_to_end_repair_with_binned_u(self, rng):
        # Continuous u -> bins -> full repair cycle (paper Section VI).
        from repro.core.repair import DistributionalRepairer
        n = 1200
        s = rng.integers(0, 2, n)
        continuous_u = rng.normal(size=n)
        x = (rng.normal(size=(n, 1)) + 1.2 * s[:, None]
             + 0.8 * continuous_u[:, None])
        data = FairnessDataset(x, s, np.zeros(n, dtype=int))
        binner = AttributeBinner(n_bins=3).fit(continuous_u)
        binned = binner.bin_dataset(data, continuous_u)
        split = binned.split(n_research=400, rng=rng)
        repairer = DistributionalRepairer(n_states=25, rng=0)
        repaired = repairer.fit(split.research).transform(split.archive)
        from repro.metrics.fairness import conditional_dependence_energy
        before = conditional_dependence_energy(
            split.archive.features, split.archive.s,
            split.archive.u).total
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        assert after < before
