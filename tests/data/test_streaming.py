"""Tests for archival streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import FairnessDataset
from repro.data.simulated import paper_simulation_spec
from repro.data.streaming import ArchiveStream, stream_batches
from repro.exceptions import ValidationError


class TestStreamBatches:
    def test_batch_sizes(self, small_dataset):
        batches = list(stream_batches(small_dataset, 100))
        assert [len(b) for b in batches] == [100, 100, 40]

    def test_order_preserved(self, small_dataset):
        batches = list(stream_batches(small_dataset, 64))
        rebuilt = np.vstack([b.features for b in batches])
        np.testing.assert_allclose(rebuilt, small_dataset.features)

    def test_single_giant_batch(self, small_dataset):
        batches = list(stream_batches(small_dataset, 10_000))
        assert len(batches) == 1
        assert len(batches[0]) == len(small_dataset)

    def test_invalid_batch_size(self, small_dataset):
        with pytest.raises(ValidationError):
            list(stream_batches(small_dataset, 0))


class TestArchiveStream:
    def test_dataset_source(self, small_dataset):
        stream = ArchiveStream(small_dataset, batch_size=50)
        batches = list(stream)
        assert sum(len(b) for b in batches) == len(small_dataset)

    def test_dataset_source_respects_max_batches(self, small_dataset):
        stream = ArchiveStream(small_dataset, batch_size=50, max_batches=2)
        assert len(list(stream)) == 2

    def test_reiterable_dataset_stream(self, small_dataset):
        stream = ArchiveStream(small_dataset, batch_size=100)
        assert len(list(stream)) == len(list(stream))

    def test_callable_source(self, rng):
        spec = paper_simulation_spec()

        def feed():
            return spec.sample(32, rng=rng)

        stream = ArchiveStream(feed, max_batches=5)
        batches = list(stream)
        assert len(batches) == 5
        assert all(len(b) == 32 for b in batches)

    def test_callable_requires_max_batches(self):
        with pytest.raises(ValidationError, match="max_batches"):
            ArchiveStream(lambda: None)

    def test_callable_must_return_dataset(self):
        stream = ArchiveStream(lambda: "nope", max_batches=1)
        with pytest.raises(ValidationError, match="FairnessDataset"):
            list(stream)

    def test_invalid_source_type(self):
        with pytest.raises(ValidationError, match="source"):
            ArchiveStream([1, 2, 3])
