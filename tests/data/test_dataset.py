"""Tests for the FairnessDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import FairnessDataset
from repro.data.schema import TableSchema
from repro.exceptions import DataError, ValidationError


class TestConstruction:
    def test_basic(self, tiny_dataset):
        assert len(tiny_dataset) == 8
        assert tiny_dataset.n_features == 2
        assert tiny_dataset.feature_names == ("x0", "x1")

    def test_label_alignment_enforced(self):
        with pytest.raises(DataError, match="misaligned"):
            FairnessDataset(np.zeros((3, 1)), [0, 1], [0, 0, 1])

    def test_nonbinary_s_rejected(self):
        with pytest.raises(DataError, match="binary"):
            FairnessDataset(np.zeros((2, 1)), [0, 2], [0, 1])

    def test_negative_u_rejected(self):
        with pytest.raises(DataError, match="non-negative"):
            FairnessDataset(np.zeros((2, 1)), [0, 1], [0, -1])

    def test_y_validation(self):
        with pytest.raises(DataError, match="binary"):
            FairnessDataset(np.zeros((2, 1)), [0, 1], [0, 1], y=[0, 3])
        with pytest.raises(DataError, match="misaligned"):
            FairnessDataset(np.zeros((2, 1)), [0, 1], [0, 1], y=[0])

    def test_schema_arity_checked(self):
        schema = TableSchema.from_names(["a"])
        with pytest.raises(DataError, match="schema"):
            FairnessDataset(np.zeros((2, 2)), [0, 1], [0, 1], schema=schema)

    def test_multigroup_u_allowed(self):
        data = FairnessDataset(np.zeros((3, 1)), [0, 1, 0], [0, 1, 2])
        np.testing.assert_array_equal(data.u_values, [0, 1, 2])


class TestSubsetting:
    def test_take_preserves_everything(self, tiny_dataset):
        subset = tiny_dataset.take([0, 2, 4])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.s, [0, 0, 0])
        np.testing.assert_array_equal(subset.y, [0, 1, 0])
        assert subset.schema is tiny_dataset.schema

    def test_with_features_swaps_matrix(self, tiny_dataset):
        new = tiny_dataset.with_features(tiny_dataset.features + 1.0)
        np.testing.assert_allclose(new.features,
                                   tiny_dataset.features + 1.0)
        np.testing.assert_array_equal(new.s, tiny_dataset.s)

    def test_concat(self, tiny_dataset):
        combined = tiny_dataset.concat(tiny_dataset)
        assert len(combined) == 16
        np.testing.assert_array_equal(combined.y[:8], tiny_dataset.y)

    def test_concat_arity_mismatch(self, tiny_dataset):
        other = FairnessDataset(np.zeros((2, 3)), [0, 1], [0, 1])
        with pytest.raises(DataError, match="arity"):
            tiny_dataset.concat(other)

    def test_concat_drops_y_if_one_side_missing(self, tiny_dataset):
        other = FairnessDataset(tiny_dataset.features, tiny_dataset.s,
                                tiny_dataset.u)  # no y
        combined = tiny_dataset.concat(other)
        assert combined.y is None


class TestGroups:
    def test_group_mask(self, tiny_dataset):
        mask = tiny_dataset.group_mask(0, 1)
        np.testing.assert_array_equal(
            mask, [False, True, False, True, False, False, False, False])

    def test_group_subset(self, tiny_dataset):
        group = tiny_dataset.group(1)
        assert len(group) == 4
        assert np.all(group.u == 1)

    def test_group_sizes(self, tiny_dataset):
        sizes = tiny_dataset.group_sizes()
        assert sizes == {(0, 0): 2, (0, 1): 2, (1, 0): 2, (1, 1): 2}

    def test_group_weights_sum_to_one(self, small_dataset):
        weights = small_dataset.group_weights()
        assert sum(weights.values()) == pytest.approx(1.0)


class TestSplit:
    def test_split_sizes(self, small_dataset, rng):
        split = small_dataset.split(n_research=60, rng=rng)
        assert split.n_research == 60
        assert split.n_archive == len(small_dataset) - 60
        assert split.research_fraction == pytest.approx(0.25)

    def test_split_fraction(self, small_dataset, rng):
        split = small_dataset.split(research_fraction=0.1, rng=rng)
        assert split.n_research == 24

    def test_split_is_partition(self, small_dataset, rng):
        split = small_dataset.split(n_research=50, rng=rng)
        total = np.vstack([split.research.features,
                           split.archive.features])
        original = np.sort(small_dataset.features, axis=0)
        np.testing.assert_allclose(np.sort(total, axis=0), original)

    def test_stratified_split_covers_groups(self, small_dataset, rng):
        split = small_dataset.split(n_research=40, stratify=True, rng=rng)
        original_groups = set(small_dataset.group_sizes())
        research_groups = set(split.research.group_sizes())
        assert research_groups == original_groups

    def test_stratified_proportions_approximate(self, rng):
        from repro.data.simulated import paper_simulation_spec
        data = paper_simulation_spec().sample(4000, rng=rng)
        split = data.split(n_research=400, stratify=True, rng=rng)
        for key, count in data.group_sizes().items():
            fraction = split.research.group_sizes()[key] / 400
            assert fraction == pytest.approx(count / 4000, abs=0.02)

    def test_unstratified_split(self, small_dataset, rng):
        split = small_dataset.split(n_research=30, stratify=False, rng=rng)
        assert split.n_research == 30

    def test_both_args_rejected(self, small_dataset):
        with pytest.raises(ValidationError, match="exactly one"):
            small_dataset.split(n_research=10, research_fraction=0.5)

    def test_no_args_rejected(self, small_dataset):
        with pytest.raises(ValidationError, match="exactly one"):
            small_dataset.split()

    def test_out_of_range_n_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            small_dataset.split(n_research=len(small_dataset))

    def test_deterministic_with_seed(self, small_dataset):
        a = small_dataset.split(n_research=50, rng=7)
        b = small_dataset.split(n_research=50, rng=7)
        np.testing.assert_allclose(a.research.features,
                                   b.research.features)
