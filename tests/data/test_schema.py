"""Tests for column schemas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import ColumnSpec, TableSchema
from repro.exceptions import SchemaError


class TestColumnSpec:
    def test_defaults(self):
        spec = ColumnSpec("age")
        assert spec.kind == "continuous"
        assert spec.low is None and spec.high is None

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            ColumnSpec("")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            ColumnSpec("x", kind="categorical")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(SchemaError, match="low"):
            ColumnSpec("x", low=5.0, high=1.0)

    def test_validate_bounds(self):
        spec = ColumnSpec("x", low=0.0, high=10.0)
        spec.validate_values([0.0, 5.0, 10.0])
        with pytest.raises(SchemaError, match="below"):
            spec.validate_values([-1.0])
        with pytest.raises(SchemaError, match="above"):
            spec.validate_values([11.0])

    def test_validate_binary(self):
        spec = ColumnSpec("flag", kind="binary")
        spec.validate_values([0.0, 1.0, 1.0])
        with pytest.raises(SchemaError, match="binary"):
            spec.validate_values([0.5])

    def test_validate_nonfinite(self):
        with pytest.raises(SchemaError, match="non-finite"):
            ColumnSpec("x").validate_values([np.nan])


class TestTableSchema:
    def test_from_names(self):
        schema = TableSchema.from_names(["a", "b"])
        assert schema.feature_names == ("a", "b")
        assert schema.n_features == 2
        assert schema.protected == "s"
        assert schema.unprotected == "u"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema.from_names(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            TableSchema(features=())

    def test_attribute_name_clash_rejected(self):
        with pytest.raises(SchemaError, match="clash"):
            TableSchema.from_names(["s", "x"])

    def test_same_attribute_names_rejected(self):
        with pytest.raises(SchemaError, match="must differ"):
            TableSchema.from_names(["x"], protected="p", unprotected="p")

    def test_feature_index(self):
        schema = TableSchema.from_names(["age", "hours"])
        assert schema.feature_index("hours") == 1
        with pytest.raises(SchemaError, match="unknown feature"):
            schema.feature_index("salary")

    def test_validate_matrix_arity(self):
        schema = TableSchema.from_names(["a", "b"])
        schema.validate_matrix(np.zeros((3, 2)))
        with pytest.raises(SchemaError, match="incompatible"):
            schema.validate_matrix(np.zeros((3, 3)))

    def test_validate_matrix_column_bounds(self):
        schema = TableSchema(features=(ColumnSpec("a", low=0.0),
                                       ColumnSpec("b")))
        schema.validate_matrix(np.array([[1.0, -5.0]]))
        with pytest.raises(SchemaError, match="below"):
            schema.validate_matrix(np.array([[-1.0, 0.0]]))

    def test_non_columnspec_rejected(self):
        with pytest.raises(SchemaError, match="ColumnSpec"):
            TableSchema(features=("age",))
