"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import FairnessDataset
from repro.data.simulated import paper_simulation_spec

try:  # Hypothesis is optional for the tier-1 suite.
    from hypothesis import HealthCheck, settings

    # "repro" keeps the property suites fast enough for tier-1;
    # "ci" is the stress budget the simplex-stress CI job selects with
    # --hypothesis-profile=ci (>= 200 generated cases across the
    # differential suite).  deadline=None: property bodies run exact
    # solvers whose wall time varies by orders of magnitude per example.
    settings.register_profile(
        "repro", max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile(
        "ci", max_examples=120, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.load_profile("repro")
except ImportError:  # pragma: no cover
    pass


@pytest.fixture
def rng():
    """A deterministic generator; tests needing randomness share this."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng):
    """A tiny labelled dataset covering all four (u, s) subgroups."""
    spec = paper_simulation_spec()
    return spec.sample(240, rng=rng)


@pytest.fixture
def paper_split(rng):
    """A small-but-realistic research/archive split of the paper's data."""
    spec = paper_simulation_spec()
    composite = spec.sample(1500, rng=rng)
    return composite.split(n_research=300, rng=rng)


@pytest.fixture
def tiny_dataset():
    """A fixed 8-row dataset for exact-value assertions."""
    features = np.array([
        [0.0, 1.0], [1.0, 2.0], [2.0, 3.0], [3.0, 4.0],
        [4.0, 5.0], [5.0, 6.0], [6.0, 7.0], [7.0, 8.0],
    ])
    s = np.array([0, 1, 0, 1, 0, 1, 0, 1])
    u = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    y = np.array([0, 0, 1, 1, 0, 1, 0, 1])
    return FairnessDataset(features, s, u, y)
