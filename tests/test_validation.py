"""Tests for the shared validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (as_1d_array, as_2d_array,
                               as_probability_vector, as_rng,
                               check_in_range, check_positive_int,
                               check_probability, check_same_length)
from repro.exceptions import ValidationError


class TestAs1dArray:
    def test_list_is_coerced(self):
        out = as_1d_array([1, 2, 3])
        assert out.dtype == float
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_scalar_becomes_length_one(self):
        assert as_1d_array(5.0).shape == (1,)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            as_1d_array(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_1d_array([])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_1d_array([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_1d_array([np.inf])

    def test_name_appears_in_error(self):
        with pytest.raises(ValidationError, match="weights"):
            as_1d_array([], name="weights")


class TestAs2dArray:
    def test_1d_promoted_to_column(self):
        assert as_2d_array([1.0, 2.0]).shape == (2, 1)

    def test_2d_passthrough(self):
        arr = np.arange(6.0).reshape(3, 2)
        np.testing.assert_array_equal(as_2d_array(arr), arr)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError, match="two-dimensional"):
            as_2d_array(np.zeros((2, 2, 2)))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            as_2d_array([[1.0], [np.inf]])


class TestProbabilityVector:
    def test_valid_passthrough(self):
        out = as_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_normalize_rescales(self):
        out = as_probability_vector([2.0, 2.0], normalize=True)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_unnormalised_rejected_without_flag(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            as_probability_vector([0.5, 1.0])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            as_probability_vector([-0.1, 1.1])

    def test_zero_mass_rejected(self):
        with pytest.raises(ValidationError, match="positive total mass"):
            as_probability_vector([0.0, 0.0], normalize=True)

    def test_tiny_negative_roundoff_clipped(self):
        out = as_probability_vector([1.0, -1e-12], normalize=True)
        assert np.all(out >= 0.0)


class TestScalarChecks:
    def test_check_same_length_ok(self):
        check_same_length(np.zeros(3), np.zeros(3))

    def test_check_same_length_mismatch(self):
        with pytest.raises(ValidationError, match="same length"):
            check_same_length(np.zeros(3), np.zeros(4), names=("a", "b"))

    def test_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7)) == 7

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(2.5)

    def test_positive_int_respects_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, minimum=2)

    def test_check_in_range_inclusive_bounds(self):
        assert check_in_range(0.0, name="t", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, name="t", low=0.0, high=1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, name="t", low=0.0, high=1.0,
                           inclusive=False)

    def test_check_probability_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability(1.2)
        with pytest.raises(ValidationError):
            check_probability(-0.1)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen
