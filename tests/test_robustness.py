"""Failure injection and degenerate-input robustness across the stack.

Each test feeds a pathological input to a public entry point and asserts
either a clean :class:`~repro.exceptions.ReproError` (never a raw numpy
crash) or graceful degradation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (DistributionalRepairer, FairnessDataset,
                   GeometricRepairer, ReproError, ValidationError,
                   conditional_dependence_energy)
from repro.core.design import design_feature_plan
from repro.core.repair import repair_feature_values
from repro.data.dataset import FairnessDataset
from repro.density.kde import GaussianKDE, interpolate_pmf
from repro.metrics.divergence import kl_divergence
from repro.ot.onedim import solve_1d


class TestNanInjection:
    def test_dataset_rejects_nan_features(self):
        with pytest.raises(ReproError):
            FairnessDataset(np.array([[np.nan]]), [0], [0])

    def test_design_rejects_nan_samples(self):
        with pytest.raises(ReproError):
            design_feature_plan({0: np.array([np.nan, 1.0]),
                                 1: np.array([0.0, 1.0])}, 10)

    def test_repair_rejects_nan_values(self, paper_split, rng):
        plan = design_feature_plan(
            {0: rng.normal(size=20), 1: rng.normal(size=20)}, 10)
        with pytest.raises(ReproError):
            repair_feature_values(np.array([np.nan]), plan, 0, rng=rng)

    def test_ot_rejects_nan_weights(self):
        with pytest.raises(ReproError):
            solve_1d([0.0, 1.0], [np.nan, 1.0], [0.0, 1.0], [0.5, 0.5])

    def test_kl_rejects_nan_pmf(self):
        with pytest.raises(ReproError):
            kl_divergence([np.nan, 1.0], [0.5, 0.5])


class TestDegenerateDistributions:
    def test_constant_feature_repairable(self, rng):
        # One feature is identical for everyone; the repair must not
        # crash (degenerate grids are widened internally).
        n = 400
        s = rng.integers(0, 2, n)
        u = rng.integers(0, 2, n)
        x = np.column_stack([np.full(n, 7.0), rng.normal(size=n) + s])
        data = FairnessDataset(x, s, u)
        split = data.split(n_research=150, rng=rng)
        repairer = DistributionalRepairer(n_states=15, rng=0)
        repaired = repairer.fit(split.research).transform(split.archive)
        # The constant feature stays (numerically) constant.
        assert repaired.features[:, 0].std() < 0.1

    def test_kde_on_identical_points(self):
        kde = GaussianKDE([3.0, 3.0, 3.0])
        assert np.isfinite(kde.pdf([3.0])).all()

    def test_interpolate_pmf_single_sample(self):
        pmf = interpolate_pmf([1.0], np.linspace(0.0, 2.0, 11))
        assert pmf.sum() == pytest.approx(1.0)

    def test_heavily_tied_data_through_full_cycle(self, rng):
        # 90% of values identical (worse than Adult's 46% spike).
        n = 600
        s = rng.integers(0, 2, n)
        u = np.zeros(n, dtype=int)
        base = np.where(rng.random(n) < 0.9, 40.0,
                        rng.normal(45.0 + 5.0 * s, 5.0))
        data = FairnessDataset(base.reshape(-1, 1), s, u)
        split = data.split(n_research=200, rng=rng)
        repairer = DistributionalRepairer(
            n_states=20, marginal_estimator="linear", rng=0)
        repaired = repairer.fit(split.research).transform(split.archive)
        assert np.isfinite(repaired.features).all()

    def test_extreme_scale_features(self, rng):
        # 1e8 magnitudes must not break the solvers or the metric.
        n = 500
        s = rng.integers(0, 2, n)
        u = rng.integers(0, 2, n)
        x = (rng.normal(size=(n, 1)) + s[:, None]) * 1e8
        data = FairnessDataset(x, s, u)
        split = data.split(n_research=200, rng=rng)
        repairer = DistributionalRepairer(n_states=20, rng=0)
        repaired = repairer.fit(split.research).transform(split.archive)
        after = conditional_dependence_energy(repaired.features,
                                              repaired.s, repaired.u)
        assert np.isfinite(after.total)

    def test_tiny_scale_features(self, rng):
        n = 500
        s = rng.integers(0, 2, n)
        u = rng.integers(0, 2, n)
        x = (rng.normal(size=(n, 1)) + s[:, None]) * 1e-8
        data = FairnessDataset(x, s, u)
        split = data.split(n_research=200, rng=rng)
        repairer = DistributionalRepairer(n_states=20, rng=0)
        repaired = repairer.fit(split.research).transform(split.archive)
        assert np.isfinite(repaired.features).all()


class TestAdversarialLabels:
    def test_single_row_groups(self, rng):
        # Geometric repair with a single point in one class must not
        # crash (mass splits across the other group).
        data = FairnessDataset(
            np.concatenate([[0.0], rng.normal(size=9)]).reshape(-1, 1),
            np.array([0] + [1] * 9), np.zeros(10, dtype=int))
        repaired = GeometricRepairer().fit_transform(data)
        assert np.isfinite(repaired.features).all()

    def test_all_one_sided_u_group_rejected_cleanly(self, rng):
        x = rng.normal(size=(20, 1))
        s = np.array([0] * 10 + [1] * 10)
        u = np.array([0] * 10 + [1] * 10)  # u groups are single-class
        data = FairnessDataset(x, s, u)
        repairer = DistributionalRepairer(n_states=10)
        with pytest.raises(ValidationError):
            repairer.fit(data)

    def test_metric_with_extreme_imbalance(self, rng):
        # 2 vs 998 split inside one u group: finite output required.
        n = 1000
        s = np.zeros(n, dtype=int)
        s[:2] = 1
        u = np.zeros(n, dtype=int)
        x = rng.normal(size=(n, 1))
        report = conditional_dependence_energy(x, s, u)
        assert np.isfinite(report.total)
