"""End-to-end integration tests across the whole library.

Each test exercises a realistic multi-module journey: data generation →
split → design → repair → measurement → downstream classification.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (DistributionalRepairer, GeometricRepairer,
                   LogisticRegression, RepairPipeline, SubgroupLabelModel,
                   conditional_dependence_energy, disparate_impact,
                   conditional_disparate_impact, simulate_paper_data,
                   synthesize_adult)
from repro.data.streaming import ArchiveStream
from repro.metrics.proxies import assess_classifier


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestSimulatedEndToEnd:
    @pytest.fixture(scope="class")
    def split(self):
        return simulate_paper_data(n_research=400, n_archive=2500, rng=0)

    def test_full_cycle_reduces_dependence(self, split):
        repairer = DistributionalRepairer(n_states=40, rng=1)
        repairer.fit(split.research)
        repaired = repairer.transform(split.archive)
        before = conditional_dependence_energy(
            split.archive.features, split.archive.s, split.archive.u)
        after = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u)
        assert after.total < before.total / 3.0

    def test_repair_both_solvers_agree_in_effect(self, split):
        results = {}
        for solver in ("exact", "sinkhorn"):
            repairer = DistributionalRepairer(n_states=30, solver=solver,
                                              epsilon=1e-3, rng=1)
            repairer.fit(split.research)
            repaired = repairer.transform(split.archive, rng=2)
            results[solver] = conditional_dependence_energy(
                repaired.features, repaired.s, repaired.u).total
        assert results["sinkhorn"] == pytest.approx(results["exact"],
                                                    rel=1.5, abs=0.1)

    def test_geometric_vs_distributional_on_sample(self, split):
        distributional = DistributionalRepairer(n_states=40, rng=1)
        dist_repaired = distributional.fit_transform(split.research)
        geo_repaired = GeometricRepairer().fit_transform(split.research)
        dist_e = conditional_dependence_energy(
            dist_repaired.features, dist_repaired.s,
            dist_repaired.u).total
        geo_e = conditional_dependence_energy(
            geo_repaired.features, geo_repaired.s, geo_repaired.u).total
        before = conditional_dependence_energy(
            split.research.features, split.research.s,
            split.research.u).total
        assert dist_e < before / 5.0
        assert geo_e < before / 5.0


class TestAdultEndToEnd:
    @pytest.fixture(scope="class")
    def split(self):
        data = synthesize_adult(8000, rng=0)
        return data.split(n_research=2000, rng=0)

    def test_classifier_di_improves_after_repair(self, split):
        repairer = DistributionalRepairer(
            n_states=120, marginal_estimator="linear", rng=1)
        repairer.fit(split.research)
        repaired_archive = repairer.transform(split.archive)

        biased = LogisticRegression().fit(
            np.column_stack([split.research.features, split.research.s]),
            split.research.y)
        # Evaluate a classifier trained on repaired features (without s).
        fair_model = LogisticRegression().fit(
            repairer.transform(split.research).features,
            split.research.y)

        biased_pred = biased.predict(
            np.column_stack([split.archive.features, split.archive.s]))
        fair_pred = fair_model.predict(repaired_archive.features)

        di_biased = conditional_disparate_impact(
            biased_pred, split.archive.s, split.archive.u)
        di_fair = conditional_disparate_impact(
            fair_pred, repaired_archive.s, repaired_archive.u)
        # Repair must push each u-conditional DI toward parity.
        for u in (0, 1):
            gap_biased = abs(np.log(max(di_biased[u], 1e-9)))
            gap_fair = abs(np.log(max(di_fair[u], 1e-9)))
            assert gap_fair < gap_biased

    def test_assessment_bundle_runs(self, split):
        model = LogisticRegression().fit(split.research.features,
                                         split.research.y)
        predictions = model.predict(split.archive.features)
        assessment = assess_classifier(predictions, split.archive.s,
                                       split.archive.u)
        assert np.isfinite(assessment.disparate_impact)


class TestUnlabelledArchiveJourney:
    def test_pipeline_with_estimated_labels(self):
        split = simulate_paper_data(n_research=400, n_archive=2000, rng=3)
        pipeline = RepairPipeline(estimate_labels=True, n_states=30,
                                  rng=0)
        pipeline.fit(split.research)
        repaired, report = pipeline.repair_and_report(split.archive)
        assert report.label_accuracy > 0.55
        assert report.after.total < report.before.total

    def test_manual_label_model_then_repair(self):
        split = simulate_paper_data(n_research=400, n_archive=2000, rng=4)
        model = SubgroupLabelModel().fit(split.research)
        relabelled = model.label_archive(split.archive)
        repairer = DistributionalRepairer(n_states=30, rng=0)
        repairer.fit(split.research)
        repaired = repairer.transform(relabelled)
        assert len(repaired) == len(split.archive)


class TestStreamingJourney:
    def test_torrent_repair(self):
        split = simulate_paper_data(n_research=300, n_archive=3000, rng=5)
        pipeline = RepairPipeline(n_states=30, rng=0)
        pipeline.fit(split.research)
        stream = ArchiveStream(split.archive, batch_size=500)
        total = 0
        for batch in pipeline.repair_stream(stream):
            total += len(batch)
            report = conditional_dependence_energy(
                batch.features, batch.s, batch.u, n_grid=60)
            assert np.isfinite(report.total)
        assert total == len(split.archive)
