"""Documentation integrity: README, docs/, doctests and example scripts.

No aspirational docs: every fenced Python block in ``README.md`` is
executed here, the solver table in ``docs/solvers.md`` is checked
against the live registry, the package and ``repro.ot`` docstring
doctests must run, and every example script must expose a ``main``
callable.
"""

from __future__ import annotations

import ast
import doctest
import re
from pathlib import Path

import pytest

import importlib

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
DOCS_DIR = REPO_ROOT / "docs"

#: The repro.ot modules whose docstring examples must stay runnable
#: (CI also runs ``pytest --doctest-modules src/repro/ot``).  Resolved
#: via importlib because e.g. the ``repro.ot.solve`` *attribute* is the
#: facade function, shadowing the module of the same name.
DOCTESTED_MODULES = tuple(
    importlib.import_module(f"repro.ot.{name}")
    for name in ("solve", "registry", "multiscale", "coupling", "onedim"))


def fenced_blocks(markdown: str, language: str = "python") -> list:
    """Extract the contents of ``language``-tagged fenced code blocks."""
    pattern = rf"```{language}\n(.*?)```"
    return re.findall(pattern, markdown, flags=re.DOTALL)


def test_package_docstring_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


@pytest.mark.parametrize("module", DOCTESTED_MODULES,
                         ids=lambda m: m.__name__)
def test_ot_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0


def test_backend_module_doctests():
    import repro.core.backend

    results = doctest.testmod(repro.core.backend, verbose=False)
    assert results.attempted > 0, "repro.core.backend lost its doctests"
    assert results.failed == 0


def test_readme_exists_and_covers_the_basics():
    readme = (REPO_ROOT / "README.md").read_text()
    for needle in ("pip install", "repro.ot", "DistributionalRepairer",
                   "--n-jobs", "--sparse-plans", "--backend",
                   "solve_many", "benchmarks/results", "repro serve",
                   "--plan-shard", "BackgroundServer"):
        assert needle in readme, f"README.md lost its {needle!r} section"


def test_readme_python_blocks_execute():
    """Every fenced Python block in the README runs, in order, sharing
    one namespace — the quickstart cannot rot."""
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = fenced_blocks(readme)
    assert len(blocks) >= 4, "README.md lost its quickstart code"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"README.md python block {i} failed: {exc!r}\n"
                        f"--- block ---\n{block}")


def test_solvers_doc_table_matches_registry():
    """docs/solvers.md documents exactly the registered solver names."""
    table = (DOCS_DIR / "solvers.md").read_text()
    rows = re.findall(r"^\| `([a-z_0-9]+)` \|", table, flags=re.MULTILINE)
    assert rows, "docs/solvers.md lost its solver table"
    documented = set(rows)
    registered = set(repro.available_solvers())
    assert documented == registered, (
        f"docs/solvers.md out of sync: missing {registered - documented}, "
        f"stale {documented - registered}")


def test_solvers_doc_batched_column_matches_registry():
    """The table's *Batched* column mirrors ``repro.ot.batch_support()``."""
    table = (DOCS_DIR / "solvers.md").read_text()
    documented = {}
    for line in table.splitlines():
        match = re.match(r"^\| `([a-z_0-9]+)` \|", line)
        if not match:
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        assert len(cells) >= 6, f"row {match.group(1)} lost its columns"
        batched_cell = cells[4].lower()
        assert batched_cell.startswith(("yes", "no")), (
            f"row {match.group(1)}: Batched column must start with "
            f"yes/no, got {cells[4]!r}")
        documented[match.group(1)] = batched_cell.startswith("yes")
    live = repro.ot.batch_support()
    assert documented == live, (
        f"docs/solvers.md Batched column out of sync with "
        f"batch_support(): doc says {documented}, registry says {live}")


def test_solvers_doc_backend_column_matches_registry():
    """The table's *Backend-aware* column mirrors
    ``repro.ot.backend_support()``."""
    table = (DOCS_DIR / "solvers.md").read_text()
    documented = {}
    for line in table.splitlines():
        match = re.match(r"^\| `([a-z_0-9]+)` \|", line)
        if not match:
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        assert len(cells) >= 7, f"row {match.group(1)} lost its columns"
        backend_cell = cells[5].lower()
        assert backend_cell.startswith(("yes", "no")), (
            f"row {match.group(1)}: Backend-aware column must start with "
            f"yes/no, got {cells[5]!r}")
        documented[match.group(1)] = backend_cell.startswith("yes")
    live = repro.ot.backend_support()
    assert documented == live, (
        f"docs/solvers.md Backend-aware column out of sync with "
        f"backend_support(): doc says {documented}, registry says {live}")


def test_architecture_doc_matches_code():
    """Spot-check that docs/architecture.md names real things."""
    doc = (DOCS_DIR / "architecture.md").read_text()
    from repro.core.serialize import FORMAT_VERSION
    assert f"FORMAT_VERSION = {FORMAT_VERSION}" in doc
    for module in ("repro.data", "repro.density", "repro.ot",
                   "repro.core", "repro.experiments"):
        assert module in doc
    for name in ("register_solver", "resolve_solver", "filter_opts",
                 "available_solvers", "register_batch_solver",
                 "solve_many", "batch_support"):
        assert name in doc
        assert hasattr(repro.ot, name)
    # The restricted-LP-engine section names the real warm-start API.
    for name in ("NetworkSimplexState", "network_simplex_arcs",
                 "refine_state"):
        assert name in doc, f"architecture.md lost simplex API {name}"
        assert hasattr(repro.ot, name)
    assert "restricted_engine" in doc
    # The execution-engine section names the real strategies.
    from repro.core.executor import EXECUTOR_NAMES
    for name in EXECUTOR_NAMES:
        assert f"`{name}`" in doc, f"architecture.md lost executor {name}"
    assert "resolve_executor" in doc
    # The compute-backend section names the real registry surface.
    import repro.core.backend as backend_module
    for name in ("get_backend", "available_backends", "ArrayBackend",
                 "register_array_backend"):
        assert name in doc, f"architecture.md lost backend API {name}"
        assert hasattr(backend_module, name)
    from repro.core.backend import BACKEND_NAMES
    for name in BACKEND_NAMES:
        assert f"`{name}`" in doc, f"architecture.md lost backend {name}"
    # The serving-tier section names the real repro.serve surface.
    import repro.serve as serve_module
    assert "repro.serve" in doc
    for name in ("RepairService", "LRUCache", "MicroBatcher",
                 "RepairHTTPServer", "listening_socket"):
        assert name in doc, f"architecture.md lost serve API {name}"
        assert hasattr(serve_module, name)
    # ...and the manifest format it documents is the one the code writes.
    from repro.core.serialize import ShardedPlanArchive  # noqa: F401
    assert "repro-plan-manifest" in doc
    assert "ShardedPlanArchive" in doc


def test_version_matches_pyproject():
    pyproject = (Path(__file__).resolve().parent.parent
                 / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


@pytest.mark.parametrize("script", sorted(EXAMPLES_DIR.glob("*.py")),
                         ids=lambda p: p.name)
def test_example_scripts_well_formed(script):
    tree = ast.parse(script.read_text())
    # Module docstring present and substantial.
    docstring = ast.get_docstring(tree)
    assert docstring and len(docstring) > 80
    # A main() entry point guarded by __main__.
    names = {node.name for node in tree.body
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names
    assert any(isinstance(node, ast.If) for node in tree.body)


def test_examples_directory_has_quickstart():
    assert (EXAMPLES_DIR / "quickstart.py").exists()
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3
