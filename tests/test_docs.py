"""Documentation integrity: README, docs/, doctests and example scripts.

No aspirational docs: every fenced Python block in ``README.md`` is
executed here, the solver table in ``docs/solvers.md`` is checked
against the live registry, the package and ``repro.ot`` docstring
doctests must run, and every example script must expose a ``main``
callable.
"""

from __future__ import annotations

import ast
import doctest
import re
from pathlib import Path

import pytest

import importlib

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
DOCS_DIR = REPO_ROOT / "docs"

#: The repro.ot modules whose docstring examples must stay runnable
#: (CI also runs ``pytest --doctest-modules src/repro/ot``).  Resolved
#: via importlib because e.g. the ``repro.ot.solve`` *attribute* is the
#: facade function, shadowing the module of the same name.
DOCTESTED_MODULES = tuple(
    importlib.import_module(f"repro.ot.{name}")
    for name in ("solve", "registry", "multiscale", "coupling", "onedim"))


def fenced_blocks(markdown: str, language: str = "python") -> list:
    """Extract the contents of ``language``-tagged fenced code blocks."""
    pattern = rf"```{language}\n(.*?)```"
    return re.findall(pattern, markdown, flags=re.DOTALL)


def test_package_docstring_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


@pytest.mark.parametrize("module", DOCTESTED_MODULES,
                         ids=lambda m: m.__name__)
def test_ot_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0


def test_readme_exists_and_covers_the_basics():
    readme = (REPO_ROOT / "README.md").read_text()
    for needle in ("pip install", "repro.ot", "DistributionalRepairer",
                   "--n-jobs", "--sparse-plans", "benchmarks/results"):
        assert needle in readme, f"README.md lost its {needle!r} section"


def test_readme_python_blocks_execute():
    """Every fenced Python block in the README runs, in order, sharing
    one namespace — the quickstart cannot rot."""
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = fenced_blocks(readme)
    assert len(blocks) >= 4, "README.md lost its quickstart code"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"README.md python block {i} failed: {exc!r}\n"
                        f"--- block ---\n{block}")


def test_solvers_doc_table_matches_registry():
    """docs/solvers.md documents exactly the registered solver names."""
    table = (DOCS_DIR / "solvers.md").read_text()
    rows = re.findall(r"^\| `([a-z_0-9]+)` \|", table, flags=re.MULTILINE)
    assert rows, "docs/solvers.md lost its solver table"
    documented = set(rows)
    registered = set(repro.available_solvers())
    assert documented == registered, (
        f"docs/solvers.md out of sync: missing {registered - documented}, "
        f"stale {documented - registered}")


def test_architecture_doc_matches_code():
    """Spot-check that docs/architecture.md names real things."""
    doc = (DOCS_DIR / "architecture.md").read_text()
    from repro.core.serialize import FORMAT_VERSION
    assert f"FORMAT_VERSION = {FORMAT_VERSION}" in doc
    for module in ("repro.data", "repro.density", "repro.ot",
                   "repro.core", "repro.experiments"):
        assert module in doc
    for name in ("register_solver", "resolve_solver", "filter_opts",
                 "available_solvers"):
        assert name in doc
        assert hasattr(repro.ot, name)


def test_version_matches_pyproject():
    pyproject = (Path(__file__).resolve().parent.parent
                 / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


@pytest.mark.parametrize("script", sorted(EXAMPLES_DIR.glob("*.py")),
                         ids=lambda p: p.name)
def test_example_scripts_well_formed(script):
    tree = ast.parse(script.read_text())
    # Module docstring present and substantial.
    docstring = ast.get_docstring(tree)
    assert docstring and len(docstring) > 80
    # A main() entry point guarded by __main__.
    names = {node.name for node in tree.body
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names
    assert any(isinstance(node, ast.If) for node in tree.body)


def test_examples_directory_has_quickstart():
    assert (EXAMPLES_DIR / "quickstart.py").exists()
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3
