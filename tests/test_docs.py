"""Documentation integrity: doctests and example scripts.

Keeps the README-level promises honest: the package docstring's quick
tour must execute, and every example script must at least import and
expose a ``main`` callable.
"""

from __future__ import annotations

import ast
import doctest
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def test_package_docstring_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_version_matches_pyproject():
    pyproject = (Path(__file__).resolve().parent.parent
                 / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


@pytest.mark.parametrize("script", sorted(EXAMPLES_DIR.glob("*.py")),
                         ids=lambda p: p.name)
def test_example_scripts_well_formed(script):
    tree = ast.parse(script.read_text())
    # Module docstring present and substantial.
    docstring = ast.get_docstring(tree)
    assert docstring and len(docstring) > 80
    # A main() entry point guarded by __main__.
    names = {node.name for node in tree.body
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names
    assert any(isinstance(node, ast.If) for node in tree.body)


def test_examples_directory_has_quickstart():
    assert (EXAMPLES_DIR / "quickstart.py").exists()
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3
