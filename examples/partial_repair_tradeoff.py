"""The repair/damage trade-off via partial repairs (paper Section VI).

A full barycentric repair maximises fairness but moves the features the
furthest, eroding whatever a downstream model could learn from them.
This example sweeps the partial-repair dial λ (convex damping of the
repair displacement) and prints the (residual dependence, damage) curve —
the trade-off the paper flags for future work, implemented in
:mod:`repro.core.partial`.

Run with::

    python examples/partial_repair_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import (PartialRepairer, conditional_dependence_energy,
                   simulate_paper_data)


def main() -> None:
    split = simulate_paper_data(n_research=500, n_archive=4000, rng=0)

    def energy(dataset) -> float:
        return conditional_dependence_energy(dataset.features, dataset.s,
                                             dataset.u).total

    partial = PartialRepairer(n_states=50, rng=1)
    partial.fit(split.research)
    records = partial.trade_off_curve(
        split.research, split.archive,
        amounts=np.linspace(0.0, 1.0, 6), energy_fn=energy, rng=2)

    print(f"{'lambda':>7} {'E (residual)':>13} {'damage (RMS)':>13}")
    for record in records:
        print(f"{record['amount']:>7.1f} {record['energy']:>13.4f} "
              f"{record['damage']:>13.4f}")

    full = records[-1]
    none = records[0]
    print(f"\nfull repair removes "
          f"{100 * (1 - full['energy'] / none['energy']):.1f}% of the "
          f"conditional dependence at an RMS feature displacement of "
          f"{full['damage']:.3f}")
    print("intermediate λ trades residual unfairness against damage — "
          "pick per application")


if __name__ == "__main__":
    main()
