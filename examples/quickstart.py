"""Quickstart: repair archival data with a small research data set.

The 60-second tour of the library on the paper's simulated data:

1. draw a composite data set from the Section V-A Gaussian mixture,
2. split it into a small labelled *research* set and a large *archive*,
3. design the OT repair on the research data (Algorithm 1),
4. repair the archive off-sample (Algorithm 2), and
5. measure the conditional-dependence reduction with the ``E`` metric.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (DistributionalRepairer, conditional_dependence_energy,
                   simulate_paper_data)


def main() -> None:
    # 1-2. Simulate and split: 500 research points vs 5,000 archival.
    split = simulate_paper_data(n_research=500, n_archive=5000, rng=0)
    research, archive = split.research, split.archive
    print(f"research: {len(research)} rows, archive: {len(archive)} rows")
    print(f"(u, s) subgroup sizes: {research.group_sizes()}")

    # How unfair are the raw data?  E is the Pr[u]-weighted symmetrised
    # KL divergence between the s-conditional feature distributions.
    before = conditional_dependence_energy(archive.features, archive.s,
                                           archive.u)
    print(f"\nunrepaired archive:  E per feature = {before.per_feature}"
          f"  total = {before.total:.4f}")

    # 3. Algorithm 1: design per-(u, s, feature) OT plans on a 50-state
    #    interpolated support.
    repairer = DistributionalRepairer(n_states=50, rng=1)
    repairer.fit(research)
    plan = repairer.plan
    print(f"\ndesigned {len(plan.feature_plans)} feature plans "
          f"({plan.total_states()} grid states in total)")

    # 4. Algorithm 2: repair the archive off-sample.  The plans never see
    #    these 5,000 points during design.
    repaired = repairer.transform(archive)

    # 5. Measure again.
    after = conditional_dependence_energy(repaired.features, repaired.s,
                                          repaired.u)
    print(f"repaired archive:    E per feature = {after.per_feature}"
          f"  total = {after.total:.4f}")
    print(f"\nconditional dependence reduced "
          f"{before.total / after.total:.1f}x")


if __name__ == "__main__":
    main()
