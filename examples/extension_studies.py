"""Run the three beyond-the-paper extension studies.

* the partial-repair trade-off (Section VI's flagged future work),
* per-feature vs joint repair on copula-hidden unfairness (the Section VI
  limitation), and
* stochastic Kantorovich repair vs its deterministic Monge-map limit
  (Section VI's individual-fairness conjecture).

Run with::

    python examples/extension_studies.py
"""

from __future__ import annotations

from repro.experiments.extensions import (run_correlation_study,
                                          run_monge_study, run_tradeoff)


def main() -> None:
    tradeoff = run_tradeoff(seed=0)
    print(tradeoff.render())
    print("-> every extra unit of fairness costs feature displacement; "
          "the curve lets an application pick its own operating point\n")

    correlation = run_correlation_study(seed=0)
    print(correlation.render())
    print("-> the per-feature repair (the paper's) is blind to "
          "correlation-borne unfairness; the joint product-grid repair "
          "removes it\n")

    monge = run_monge_study(seed=0)
    print(monge.render())
    print("-> Monge maps repair clones identically (individual "
          "fairness) at comparable group fairness — the paper's "
          "anticipated n_Q -> infinity limit")


if __name__ == "__main__":
    main()
