"""Deployment: persist plans, repair for months, watch for drift.

The paper's operational promise is *design once, apply forever* — valid
only while the archive stays stationary (Section IV-A1's "main active
assumption").  This example shows the full deployment loop:

1. design repair plans on research data and **save them to disk**;
2. in a (simulated) later process, **load** the plans and repair incoming
   batches;
3. run the :class:`DriftMonitor` on every batch, and
4. watch the monitor fire when the feed drifts (a slow mean shift), which
   is the signal to collect fresh research data and re-design.

Run with::

    python examples/deployment_drift_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (DriftMonitor, DistributionalRepairer, load_plan,
                   paper_simulation_spec, save_plan,
                   conditional_dependence_energy)


def main() -> None:
    spec = paper_simulation_spec()
    research = spec.sample(1200, rng=0)

    # --- design-time process ------------------------------------------------
    repairer = DistributionalRepairer(n_states=50, padding=0.05, rng=1)
    repairer.fit(research)
    plan_path = Path(tempfile.mkdtemp()) / "repair_plan.npz"
    written = save_plan(repairer.plan, plan_path)
    print(f"plans designed on {len(research)} rows and saved to "
          f"{written.name} ({written.stat().st_size / 1024:.0f} KiB)\n")

    # --- serving process (later, elsewhere) ----------------------------------
    plan = load_plan(written)
    monitor = DriftMonitor(plan, min_coverage=0.97, max_w1_shift=0.08)
    server = DistributionalRepairer(n_states=50, rng=2)
    server._plan = plan  # plans come from disk; no re-fit

    feed_rng = np.random.default_rng(7)
    print(f"{'month':>5} {'drift':>6} {'worst cover':>12} "
          f"{'worst W1':>9} {'E after repair':>15}")
    for month in range(10):
        # After month 5 the population drifts: a growing mean shift.
        shift = max(0, month - 5) * 0.6
        batch = spec.sample(1500, rng=feed_rng)
        batch = batch.with_features(batch.features + shift)

        report = monitor.check(batch)
        repaired = server.transform(batch)
        energy = conditional_dependence_energy(
            repaired.features, repaired.s, repaired.u).total
        flag = "YES" if report.any_drift else "no"
        print(f"{month:>5} {flag:>6} {report.worst_coverage:>12.3f} "
              f"{report.worst_w1_shift:>9.3f} {energy:>15.4f}")

    print("\nonce the monitor fires, the plans are stale: collect fresh "
          "research data and re-run the design (Algorithm 1)")


if __name__ == "__main__":
    main()
