"""Study the operating conditions n_R and n_Q (paper Section V-A2).

Reproduces, at reduced Monte-Carlo budget, the two design-knob studies:

* Figure 3 — how much research data the repair needs (``E`` vs ``n_R``),
* Figure 4 — how fine the interpolated support must be (``E`` vs ``n_Q``),

and prints the convergence points the paper reads off the figures.

Run with::

    python examples/operating_conditions.py
"""

from __future__ import annotations

from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import Fig4Config, run_fig4


def main() -> None:
    fig3 = run_fig3(Fig3Config(research_sizes=(25, 50, 100, 200, 350,
                                               500, 750),
                               n_repeats=5, seed=0))
    print(fig3.render())
    print(f"-> archive repair within 50% of its final quality by "
          f"nR = {fig3.converged_by()} "
          f"({fig3.converged_by() / 5000:.0%} of the archive size)\n")

    fig4 = run_fig4(Fig4Config(n_repeats=5, seed=0))
    print(fig4.render())
    print(f"-> composite repair converged by nQ = "
          f"{fig4.convergence_threshold()} "
          "(an order of magnitude fewer states than research points)")


if __name__ == "__main__":
    main()
