"""Adult income: repair gender dependence and watch a classifier turn fair.

The paper's Section V-B scenario, end to end:

* ``s`` = 1 for males, ``u`` = 1 for college-level education or above,
  features are *age* and *hours worked per week*;
* a research set of 10,000 labelled rows designs the repair at
  ``n_Q = 250``;
* the remaining ~35,000 archival rows are repaired off-sample;
* a logistic-regression income classifier is trained before and after the
  repair, and its conditional disparate impact (Definition 2.3) is
  compared.

Uses the calibrated synthetic Adult generator (no network access); point
``load_adult_csv`` at a local ``adult.data`` file for the real thing.

Run with::

    python examples/adult_income_repair.py
"""

from __future__ import annotations

import numpy as np

from repro import (DistributionalRepairer, LogisticRegression,
                   conditional_dependence_energy,
                   conditional_disparate_impact, synthesize_adult)


def describe_di(name: str, di_per_group: dict) -> None:
    rendered = {u: f"{v:.3f}" for u, v in di_per_group.items()}
    print(f"  {name}: DI(g, u) = {rendered}  (1.0 is parity, "
          "< 0.8 violates the four-fifths rule)")


def main() -> None:
    data = synthesize_adult(45_222, rng=0)
    split = data.split(n_research=10_000, rng=0)
    research, archive = split.research, split.archive
    print(f"research: {len(research)}, archive: {len(archive)} rows; "
          f"features = {data.feature_names}")

    # --- conditional dependence before/after repair -----------------------
    before = conditional_dependence_energy(archive.features, archive.s,
                                           archive.u)
    repairer = DistributionalRepairer(n_states=250,
                                      marginal_estimator="linear", rng=1)
    repairer.fit(research)
    repaired_research = repairer.transform(research)
    repaired_archive = repairer.transform(archive)
    after = conditional_dependence_energy(
        repaired_archive.features, repaired_archive.s,
        repaired_archive.u)
    print("\nE (age, hours/week):")
    print(f"  unrepaired archive: {np.round(before.per_feature, 4)}")
    print(f"  repaired archive:   {np.round(after.per_feature, 4)}")

    # --- downstream classifier fairness ------------------------------------
    # "Unfair" model: trained on raw features (income labels encode a
    # direct gender effect, so the feature dependence is picked up).
    unfair_model = LogisticRegression().fit(research.features, research.y)
    unfair_pred = unfair_model.predict(archive.features)

    # "Repaired" model: trained and evaluated on repaired features.
    fair_model = LogisticRegression().fit(repaired_research.features,
                                          research.y)
    fair_pred = fair_model.predict(repaired_archive.features)

    print("\nconditional disparate impact of the income classifier:")
    describe_di("trained on raw features     ",
                conditional_disparate_impact(unfair_pred, archive.s,
                                             archive.u))
    describe_di("trained on repaired features",
                conditional_disparate_impact(fair_pred, archive.s,
                                             archive.u))

    # Repair costs accuracy — quantify the price of fairness.
    unfair_acc = float(np.mean(unfair_pred == archive.y))
    fair_acc = float(np.mean(fair_pred == archive.y))
    print(f"\naccuracy: raw {unfair_acc:.3f} -> repaired {fair_acc:.3f} "
          "(fairness-performance trade-off)")


if __name__ == "__main__":
    main()
