"""Streaming repair of an unbounded archival torrent.

The paper's motivating deployment: the repair plans are designed *once*
on a small research data set, then applied online to archival batches as
they arrive — here an unbounded feed simulated by a generator callback.
The protected attribute of the stream is never observed; it is estimated
per batch with the research-fitted mixture model (Section IV requirement
5 / Section VI).

Run with::

    python examples/streaming_archival_repair.py
"""

from __future__ import annotations

import numpy as np

from repro import (ArchiveStream, RepairPipeline,
                   conditional_dependence_energy, paper_simulation_spec)


def main() -> None:
    spec = paper_simulation_spec()

    # Small, fully-labelled research set (the only labelled data we get).
    research = spec.sample(600, rng=0)
    print(f"research set: {len(research)} labelled rows")

    # The pipeline fits Algorithm 1 plus an s|u label model.
    pipeline = RepairPipeline(estimate_labels=True, n_states=50, rng=1)
    pipeline.fit(research)
    print("repair plans + label model fitted\n")

    # An unbounded archival feed: each call yields a fresh batch whose
    # s labels will be *discarded* to simulate unlabelled archives (the
    # pipeline re-estimates them before repairing).
    feed_rng = np.random.default_rng(42)

    def feed():
        return spec.sample(1000, rng=feed_rng)

    stream = ArchiveStream(feed, max_batches=8)

    # Two accountability views per batch:
    #  * "est"  — E measured against the estimated labels the repair acted
    #    on (what the pipeline can be held to);
    #  * "true" — E against the hidden true labels (how much *real*
    #    unfairness was removed despite label errors).
    print(f"{'batch':>5} {'E est before':>13} {'E est after':>12} "
          f"{'E true before':>14} {'E true after':>13} {'label acc':>10}")
    total_rows = 0
    for index, batch in enumerate(stream):
        estimated = pipeline.label_model.label_archive(batch)
        accuracy = float(np.mean(estimated.s == batch.s))
        repaired = pipeline.repairer.transform(estimated)
        est_before = conditional_dependence_energy(
            batch.features, estimated.s, batch.u).total
        est_after = conditional_dependence_energy(
            repaired.features, estimated.s, batch.u).total
        true_before = conditional_dependence_energy(
            batch.features, batch.s, batch.u).total
        true_after = conditional_dependence_energy(
            repaired.features, batch.s, batch.u).total
        total_rows += len(batch)
        print(f"{index:>5} {est_before:>13.3f} {est_after:>12.3f} "
              f"{true_before:>14.3f} {true_after:>13.3f} "
              f"{accuracy:>10.3f}")

    print(f"\nrepaired {total_rows} archival rows with plans designed on "
          f"{len(research)} research rows — the design was never updated")
    print("note: ~15% label error blunts the true-label repair — the "
          "paper's assumption of low-error s|u labels is load-bearing")


if __name__ == "__main__":
    main()
